#!/usr/bin/env python
"""Distributed shared virtual memory across SASOS nodes (Table 1 DSM rows).

Four nodes share a segment that lives at the *same* global virtual
address everywhere — the distributed single address space of Carter et
al. that the paper cites.  A Li-style directory protocol moves pages:
read faults fetch shared copies, write faults take exclusive ownership
and invalidate the others.  Every coherence verb is a protection
operation, so the models' costs diverge while the traffic is identical.

Run:  python examples/distributed_memory.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.workloads.dsm import DSMCluster, SHARED_BASE_VPN


def main() -> None:
    rows = []
    for model in ("plb", "pagegroup", "conventional"):
        cluster = DSMCluster(model, nodes=4, pages=16, seed=3)
        stats = cluster.run_migratory(rounds=2, refs_per_round=200)
        stats.merge(cluster.run_producer_consumer(iterations=4, region_pages=6))
        rows.append(
            [
                model,
                stats["dsm.get_readable"],
                stats["dsm.get_writable"],
                stats["dsm.msg.invalidate"],
                stats["plb.update"] + stats["plb.sweep_updated"],
                stats["pgtlb.update"],
                stats["asidtlb.update"],
            ]
        )
    print("shared segment pinned at global VPN "
          f"{SHARED_BASE_VPN:#x} on every node\n")
    print(
        format_table(
            [
                "model",
                "get_readable",
                "get_writable",
                "invalidates",
                "PLB rights updates",
                "AID-TLB updates",
                "ASID-TLB updates",
            ],
            rows,
            title="DSM over 4 nodes: same coherence traffic, "
            "different protection mechanics",
        )
    )
    print(
        "\nTable 1's DSM rows in action: 'Get Readable' sets read-only\n"
        "rights, 'Get Writable' invalidates remote copies and grants\n"
        "read-write, 'Invalidate' sets rights to none — one PLB entry\n"
        "per domain versus one rights+group TLB update per page."
    )


if __name__ == "__main__":
    main()
