#!/usr/bin/env python
"""Transactional virtual memory, 801-style (Table 1 transaction rows).

Each transaction runs in its own protection domain over a shared
database segment; page touches fault, the lock manager grants read or
write locks with matching page rights, and commit returns everything to
the inaccessible state.  The page-group model's two lock
representations (§4.1.2) are both shown: per-domain lock groups
(cheap, but shared pages *alternate* between groups) and per-page lock
groups (no alternation, but the group cache fills up).

Run:  python examples/transactional_memory.py
"""

from __future__ import annotations

import dataclasses

from repro.analysis.report import format_table
from repro.core.costs import cycles_for
from repro.os.kernel import Kernel
from repro.workloads.txn import TransactionalVM, TxnConfig


def main() -> None:
    base = TxnConfig(
        db_pages=32,
        transactions=10,
        touches_per_txn=18,
        concurrent=2,
        write_fraction=0.25,
        zipf_s=1.2,
        seed=1992,
    )
    runs = [
        ("plb", Kernel("plb"), base),
        ("conventional", Kernel("conventional"), base),
        ("pagegroup / domain lock-groups", Kernel("pagegroup"), base),
        (
            "pagegroup / per-page lock-groups",
            Kernel("pagegroup", system_options={"group_capacity": 8}),
            dataclasses.replace(base, lock_strategy="page"),
        ),
    ]
    rows = []
    for label, kernel, config in runs:
        report = TransactionalVM(kernel, config).run()
        stats = report.stats
        rows.append(
            [
                label,
                report.commits,
                report.read_locks,
                report.write_locks,
                report.group_alternations,
                stats["group_reload"],
                stats["plb.update"],
                stats["pgtlb.update"],
                cycles_for(stats),
            ]
        )
    print(
        format_table(
            [
                "configuration",
                "commits",
                "read locks",
                "write locks",
                "group alternations",
                "group reloads",
                "PLB updates",
                "AID-TLB updates",
                "weighted cycles",
            ],
            rows,
            title="Transactional VM: lock representation costs (§4.1.2)",
        )
    )
    print(
        "\nThe domain-page model represents each transaction's locks as\n"
        "per-domain PLB rights — one entry update per lock event.  The\n"
        "page-group model must move pages between groups, choosing between\n"
        "alternation (domain groups) and group-cache pressure (page groups)."
    )


if __name__ == "__main__":
    main()
