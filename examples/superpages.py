#!/usr/bin/env python
"""Decoupled granularities: protection vs translation page sizes (§4.3).

Because the PLB separates protection from translation, each can use the
granularity that suits it:

* a big uniform segment gets ONE protection entry (a superpage PLB
  entry) and, when backed by physically contiguous frames, ONE
  translation entry — multiplying both structures' reach;
* a transactional database keeps 4 KB (or finer) protection while its
  translations stay large.

Run:  python examples/superpages.py
"""

from __future__ import annotations

from repro import Kernel, Machine, Rights
from repro.analysis.report import format_table


def run(plb_levels, tlb_levels, contiguous):
    kernel = Kernel(
        "plb",
        n_frames=8192,
        system_options={
            "plb_entries": 16,
            "plb_levels": plb_levels,
            "tlb_entries": 8,
            "tlb_levels": tlb_levels,
        },
    )
    machine = Machine(kernel)
    domain = kernel.create_domain("app")
    segments = [
        kernel.create_segment(f"region-{index}", 16, contiguous=contiguous)
        for index in range(4)
    ]
    for segment in segments:
        kernel.attach(domain, segment, Rights.RW)
    for _ in range(3):
        for segment in segments:
            for vpn in segment.vpns():
                machine.read(domain, kernel.params.vaddr(vpn))
    return kernel


def main() -> None:
    configs = [
        ("4K protection / 4K translation", (0,), (0,), False),
        ("64K protection / 4K translation", (4, 0), (0,), False),
        ("4K protection / 64K translation", (0,), (4, 0), True),
        ("64K protection / 64K translation", (4, 0), (4, 0), True),
    ]
    rows = []
    for label, plb_levels, tlb_levels, contiguous in configs:
        kernel = run(plb_levels, tlb_levels, contiguous)
        stats = kernel.stats
        rows.append(
            [
                label,
                stats["plb.fill"],
                f"{stats['plb.miss'] / (stats['plb.hit'] + stats['plb.miss']) * 100:.1f}%",
                stats["tlb.fill"],
                kernel.system.tlb.reach_pages(),
            ]
        )
    print(
        format_table(
            ["configuration", "PLB fills", "PLB miss rate",
             "TLB fills", "TLB reach (pages)"],
            rows,
            title="4 x 16-page regions through a 16-entry PLB and 8-entry TLB",
        )
    )
    print(
        "\nSection 4.3's point: with the PLB the two granularities are\n"
        "independent dials — big translations for TLB reach, protection\n"
        "sized to what the application's fault-driven tricks need."
    )


if __name__ == "__main__":
    main()
