#!/usr/bin/env python
"""Concurrent checkpointing and compression paging (Table 1 rows 11-14).

Two VM services built on the same protection machinery:

* a checkpoint server makes an application segment read-only, catches
  copy-on-write faults, and streams consistent page images to disk
  while the application keeps running;
* a compressing user-level pager evicts cold pages under memory
  pressure, compressing page images on the way out (Appel & Li).

Run:  python examples/checkpoint_server.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.os.kernel import Kernel
from repro.workloads.checkpoint import CheckpointConfig, ConcurrentCheckpoint
from repro.workloads.compression import CompressionConfig, CompressionPaging


def checkpoint_demo() -> None:
    config = CheckpointConfig(
        segment_pages=24, checkpoints=2, refs_per_checkpoint=600, seed=7
    )
    rows = []
    for model in ("plb", "pagegroup", "conventional"):
        report = ConcurrentCheckpoint(Kernel(model), config).run()
        stats = report.stats
        rows.append(
            [
                model,
                report.checkpoints,
                report.pages_checkpointed,
                report.copy_on_write_faults,
                stats["plb.sweep_inspected"],
                stats["pgtlb.update"],
                stats["disk.write"],
            ]
        )
    print(
        format_table(
            [
                "model",
                "checkpoints",
                "pages written",
                "COW faults",
                "PLB sweep inspections",
                "AID-TLB updates",
                "disk writes",
            ],
            rows,
            title="Concurrent checkpoint: restrict-access + per-page COW",
        )
    )


def compression_demo() -> None:
    config = CompressionConfig(
        segment_pages=48, resident_budget=16, refs=1_500, zipf_s=0.9, seed=7
    )
    rows = []
    for model in ("plb", "pagegroup", "conventional"):
        report = CompressionPaging(Kernel(model, n_frames=2048), config).run()
        stats = report.stats
        rows.append(
            [
                model,
                report.page_outs,
                report.page_ins,
                f"{report.compression_ratio:.2f}x",
                stats["disk.bytes_written"] // 1024,
                stats["dcache.flush_lines"],
            ]
        )
    print(
        format_table(
            [
                "model",
                "page-outs",
                "page-ins",
                "compression",
                "KB to disk",
                "cache lines flushed",
            ],
            rows,
            title="Compression paging under memory pressure "
            "(48-page working set, 16-frame budget)",
        )
    )


def main() -> None:
    checkpoint_demo()
    print()
    compression_demo()
    print(
        "\nBoth services pin pages exclusively during the operation "
        "(Table 1's\npaging rows): rights-to-none in the PLB versus a move "
        "into the server's\nprivate page-group."
    )


if __name__ == "__main__":
    main()
