#!/usr/bin/env python
"""A user-level segment server: the tamper-evident append-only log (§6).

The paper's closing section describes Opal's direction: "user-level
segment servers which control the semantics and the protection for each
segment."  This example registers a segment server that turns an
ordinary segment into an append-only log: the sealed prefix is
hardware read-only for everyone, the frontier page is writable by
admitted appenders, and the server advances the frontier on the
protection fault an append past it generates.  No check runs on the
read or append fast paths — the protection hardware *is* the policy.

Run:  python examples/append_only_log.py
"""

from __future__ import annotations

from repro import Kernel, Machine, SegmentationViolation
from repro.os.segserver import AppendOnlyLogServer, SegmentServerRegistry


def main() -> None:
    kernel = Kernel("plb")
    machine = Machine(kernel)
    registry = SegmentServerRegistry(kernel)

    log_segment = kernel.create_segment("audit-log", n_pages=4)
    log = AppendOnlyLogServer(kernel, registry, log_segment)

    producer = kernel.create_domain("producer")
    auditor = kernel.create_domain("auditor")
    log.admit(producer)
    log.admit(auditor, reader_only=True)

    page = kernel.params.page_size
    base = kernel.params.vaddr(log_segment.base_vpn)

    # The producer appends three pages' worth of records.
    for record in range(3 * (page // 256)):
        machine.write(producer, base + record * 256)
    print(f"appended through page {log.frontier}; "
          f"{kernel.stats['segserver.log_page_sealed']} pages sealed")

    # The auditor reads the whole sealed history.
    for offset in range(0, (log.frontier + 1) * page, 1024):
        machine.read(auditor, base + offset)
    print("auditor read the full log (reads are unmediated)")

    # Tampering with sealed history is refused by hardware+server.
    try:
        machine.write(producer, base)  # page 0 is sealed
    except SegmentationViolation:
        print("producer's attempt to rewrite sealed history: DENIED")

    try:
        machine.write(auditor, base + log.frontier * page)
    except SegmentationViolation:
        print("auditor (read-only) cannot append: DENIED")

    print(f"\nserver dispatches: "
          f"{kernel.stats['segserver.protection_dispatch']} protection faults "
          f"routed to the log's segment server; "
          f"tamper attempts refused: {kernel.stats['segserver.log_tamper_refused']}")


if __name__ == "__main__":
    main()
