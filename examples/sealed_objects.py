#!/usr/bin/env python
"""Execution-point protection: sealed objects without capabilities (§5).

The paper's related work cites Okamoto et al.'s generalization of the
domain-page model: a page can be protected by *where the program is
executing* rather than which domain it is — "page A can be marked so
that it has read-only access by any thread that is currently executing
code from page B."

This example builds a sealed object: a balance record writable only
from its accessor code page.  Any domain may call the accessor (and
succeed); no domain may poke the record directly (and every attempt is
denied), giving capability-style encapsulation with ordinary page-level
hardware — the trade the paper's Section 5 highlights against true
capability machines.

Run:  python examples/sealed_objects.py
"""

from __future__ import annotations

from repro.core.execpoint import ExecPointMMU, ExecPointPolicyTable
from repro.core.rights import AccessType, Rights

PAGE = 4096
BALANCE_PAGE = 0x7000_0000 // PAGE  # the sealed data page
ACCESSOR_PAGE = 0x7100_0000 // PAGE  # deposit()/withdraw() code lives here
APP_CODE_PAGE = 0x7200_0000 // PAGE  # untrusted application code


def main() -> None:
    policy = ExecPointPolicyTable()
    mmu = ExecPointMMU(policy)

    # Seal the balance page: read-write from the accessor code page,
    # nothing from anywhere else, for every protection domain.
    policy.seal_to_code(BALANCE_PAGE, {ACCESSOR_PAGE: Rights.RW})

    balance_addr = BALANCE_PAGE * PAGE + 0x10
    accessor_pc = ACCESSOR_PAGE * PAGE + 0x40
    app_pc = APP_CODE_PAGE * PAGE + 0x90

    print("sealed object: balance record at "
          f"{balance_addr:#x}, accessor code at page {ACCESSOR_PAGE:#x}\n")

    for domain in (1, 2, 3):
        via_accessor = mmu.check(domain, accessor_pc, balance_addr, AccessType.WRITE)
        direct = mmu.check(domain, app_pc, balance_addr, AccessType.READ)
        print(f"domain {domain}: write via accessor -> "
              f"{'ALLOWED' if via_accessor else 'denied'};  "
              f"direct read from app code -> "
              f"{'allowed' if direct else 'DENIED'}")

    print(f"\nchecks: {mmu.stats['xp.checks']}, "
          f"PLB refills: {mmu.stats['xp.refill']}, "
          f"denials: {mmu.stats['xp.denied']}")
    print(
        "\nNote the caching: all domains share ONE PLB entry for the\n"
        "accessor context (the tag is the executing page, not the domain),\n"
        "so the sealed object costs a single protection entry system-wide."
    )

    # Revocation: unseal and the accessor loses its power too.
    mmu.revoke_page(BALANCE_PAGE)
    assert not mmu.check(1, accessor_pc, balance_addr, AccessType.READ)
    print("\nafter revoke_page: even the accessor page is denied — "
          "entries were purged atomically.")


if __name__ == "__main__":
    main()
