#!/usr/bin/env python
"""Copy-on-write in a single address space (the paper's footnote 4).

"Copy-on-write uses read-only synonyms which do not have to be kept
coherent.  As soon as a write occurs to one copy of an address, the
page is copied, and the synonym no longer exists."

A writer domain owns a data segment; a logical copy is created at a
*fresh* global address (names are never reused in a SASOS), sharing the
original's physical frames read-only.  Reads on either side cost
nothing; the first write to a page breaks its share, and only then is a
frame copied.

Run:  python examples/copy_on_write.py
"""

from __future__ import annotations

from repro.core.rights import Rights
from repro.os.cow import CopyOnWriteManager
from repro.os.kernel import Kernel
from repro.sim.machine import Machine


def main() -> None:
    kernel = Kernel("plb", system_options={"detect_hazards": True, "cache_ways": 2})
    machine = Machine(kernel)
    cow = CopyOnWriteManager(kernel)

    writer = kernel.create_domain("writer")
    reader = kernel.create_domain("reader")
    source = kernel.create_segment("dataset", 8)
    cow.attach(writer, source, Rights.RW)
    for vpn in source.vpns():
        kernel.memory.write_page(
            kernel.translations.pfn_for(vpn), b"version-1" + bytes(64)
        )

    copy = cow.create_copy(source, "dataset-snapshot")
    cow.attach(reader, copy, Rights.READ)
    print(f"source at VPN {source.base_vpn:#x}, snapshot at VPN "
          f"{copy.base_vpn:#x} — distinct global names, shared frames")
    print(f"pages shared: {kernel.stats['cow.pages_shared']}, "
          f"frames in use: {kernel.memory.used_frames}")

    # Both sides read freely; no copying happens.
    machine.read(writer, kernel.params.vaddr(source.base_vpn))
    machine.read(reader, kernel.params.vaddr(copy.base_vpn))
    print(f"after reads: pages copied = {kernel.stats['cow.pages_copied']}, "
          f"read-only synonyms observed in the VIVT cache = "
          f"{kernel.stats['dcache.synonym_hazard']} (harmless: nothing dirty)")

    # The writer updates two pages: exactly two frames get copied.
    for index in (0, 1):
        machine.write(writer, kernel.params.vaddr(source.vpn_at(index)))
    print(f"after 2 writes: COW faults broke {kernel.stats['cow.breaks']} "
          f"shares, pages copied = {kernel.stats['cow.pages_copied']}")

    # The snapshot still reads version-1 data.
    data = kernel.memory.read_page(kernel.translations.pfn_for(copy.base_vpn))
    print(f"snapshot page 0 still reads: {data[:9].decode()}")
    assert data.startswith(b"version-1")
    print(f"remaining shared pages: "
          f"{sum(1 for vpn in copy.vpns() if cow.is_shared(vpn))} of {len(copy)}")


if __name__ == "__main__":
    main()
