#!/usr/bin/env python
"""Cross-domain RPC and the cost of protection-domain switches (§4.1.4).

A client and a server ping-pong through a shared argument segment — the
SASOS equivalent of an LRPC-style fast path, where arguments are passed
by *reference* into memory both domains can address.  The paper's
headline claim: on a PLB system the switch is one register write; on
the page-group system every switch purges the group cache and reloads
the new domain's working set of groups.

Run:  python examples/rpc_server.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.costs import cycles_for
from repro.os.kernel import Kernel
from repro.workloads.rpc import RPCConfig, RPCWorkload


def run(model: str, **system_options):
    config = RPCConfig(calls=100, arg_pages=2, private_segments=5, private_pages=2)
    kernel = Kernel(model, system_options=system_options or None)
    return RPCWorkload(kernel, config).run()


def main() -> None:
    configs = [
        ("plb", run("plb")),
        ("pagegroup (lazy reload)", run("pagegroup")),
        ("pagegroup (eager reload)", run("pagegroup", eager_reload=True)),
        ("conventional (ASID-tagged)", run("conventional")),
        ("conventional (untagged)", run("conventional", asid_tagged=False)),
    ]
    rows = []
    for label, report in configs:
        stats = report.stats
        switches = report.switches or 1
        rows.append(
            [
                label,
                report.calls,
                switches,
                round(stats["pdid.write"] / switches, 2),
                round((stats["group_reload"] + stats["group_eager_load"]) / switches, 2),
                round(stats["asidtlb.purge_removed"] / switches, 2),
                round(cycles_for(stats) / report.calls),
            ]
        )
    print(
        format_table(
            [
                "system",
                "RPC calls",
                "switches",
                "register writes/switch",
                "group loads/switch",
                "TLB purged/switch",
                "weighted cycles/call",
            ],
            rows,
            title="RPC ping-pong: per-switch protection cost (Section 4.1.4)",
        )
    )
    print(
        "\nThe PLB retains both domains' rights simultaneously (entries are\n"
        "PD-ID-tagged), so the steady state takes no protection refills at\n"
        "all; the page-group holder must be rebuilt after every switch."
    )


if __name__ == "__main__":
    main()
