"""The bench-regression gate's comparison logic (tools/).

Pins the contract that a baseline Table 1 cell missing from the current
run is a hard failure — silently dropping a (workload, model) cell must
not read as "no regression".
"""

from __future__ import annotations

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

from check_bench_regression import (  # noqa: E402
    THRESHOLD,
    THROUGHPUT_FUSED_FLOOR,
    THROUGHPUT_THRESHOLD,
    check,
    check_throughput,
    main,
)


BASELINE = {
    "attach": {"plb": 1000, "pagegroup": 2000},
    "gc": {"plb": 500},
}


def test_within_threshold_passes():
    current = {
        "attach": {"plb": int(1000 * (1 + THRESHOLD)), "pagegroup": 2000},
        "gc": {"plb": 500},
    }
    assert check(current, BASELINE) == []


def test_growth_beyond_threshold_fails():
    current = {
        "attach": {"plb": 1200, "pagegroup": 2000},
        "gc": {"plb": 500},
    }
    failures = check(current, BASELINE)
    assert len(failures) == 1
    assert "attach / plb" in failures[0]
    assert "+20.0%" in failures[0]


def test_missing_cell_fails():
    current = {
        "attach": {"plb": 1000},  # pagegroup cell vanished
        "gc": {"plb": 500},
    }
    failures = check(current, BASELINE)
    assert len(failures) == 1
    assert "attach / pagegroup" in failures[0]
    assert "missing" in failures[0]


def test_missing_workload_fails_every_cell():
    failures = check({"attach": BASELINE["attach"]}, BASELINE)
    assert failures == ["gc / plb: cell missing from current run"]


def test_improvement_never_fails():
    current = {
        "attach": {"plb": 1, "pagegroup": 1},
        "gc": {"plb": 1},
    }
    assert check(current, BASELINE) == []


def test_zero_baseline_cell_does_not_divide_by_zero():
    assert check({"gc": {"plb": 7}}, {"gc": {"plb": 0}}) == []


def test_null_baseline_cell_is_a_named_failure():
    # A null cell used to silently PASS (falsy -> growth 0.0); it must
    # fail by name instead of reading as "no regression".
    failures = check({"gc": {"plb": 7}}, {"gc": {"plb": None}})
    assert len(failures) == 1
    assert "gc / plb" in failures[0]
    assert "malformed" in failures[0]


def test_non_integer_baseline_cell_is_a_named_failure():
    failures = check({"gc": {"plb": 7}}, {"gc": {"plb": "500"}})
    assert len(failures) == 1
    assert "malformed" in failures[0]
    assert "'500'" in failures[0]


def test_bool_baseline_cell_is_a_named_failure():
    failures = check({"gc": {"plb": 7}}, {"gc": {"plb": True}})
    assert len(failures) == 1
    assert "malformed" in failures[0]


def test_non_dict_workload_entry_is_a_named_failure():
    # Used to crash with AttributeError on .items().
    failures = check({"gc": {"plb": 7}}, {"gc": [500]})
    assert len(failures) == 1
    assert failures[0].startswith("gc:")
    assert "malformed" in failures[0]


def test_malformed_entries_do_not_mask_other_cells():
    baseline = {"gc": None, "attach": {"plb": 100}}
    failures = check({"attach": {"plb": 200}}, baseline)
    assert len(failures) == 2
    assert any("gc" in line and "malformed" in line for line in failures)
    assert any("attach / plb" in line and "+100.0%" in line for line in failures)


def _tp_cell(recipe=3.0, fused=40.0, ratio=12.0):
    return {
        "recipe_speedup": recipe,
        "fused_speedup": fused,
        "fused_vs_recipe": ratio,
        "full_refs_per_sec": 100_000,
        "recipe_refs_per_sec": 300_000,
        "fused_refs_per_sec": 4_000_000,
    }


TP_BASELINE = {"plb": _tp_cell(), "conventional": _tp_cell(recipe=4.0, fused=60.0)}


class TestCheckThroughput:
    def test_within_threshold_passes(self):
        current = {
            "plb": _tp_cell(recipe=3.0 * (1 - THROUGHPUT_THRESHOLD), fused=40.0),
            "conventional": _tp_cell(recipe=4.0, fused=60.0),
        }
        assert check_throughput(current, TP_BASELINE) == []

    def test_recipe_speedup_drop_fails_by_name(self):
        current = {"plb": _tp_cell(recipe=1.0), "conventional": _tp_cell(4.0, 60.0)}
        failures = check_throughput(current, TP_BASELINE)
        assert len(failures) == 1
        assert "plb" in failures[0] and "recipe_speedup" in failures[0]

    def test_fused_speedup_drop_fails_independently(self):
        # The recipe rung can look healthy while the fused rung regresses.
        current = {"plb": _tp_cell(fused=10.0), "conventional": _tp_cell(4.0, 60.0)}
        failures = check_throughput(current, TP_BASELINE)
        assert len(failures) == 1
        assert "fused_speedup" in failures[0]

    def test_fused_vs_recipe_floor_is_absolute(self):
        # Even a freshly refreshed baseline cannot excuse fused replay
        # falling under the floor vs the recipe path.
        weak = _tp_cell(ratio=THROUGHPUT_FUSED_FLOOR - 1)
        failures = check_throughput(
            {"plb": weak, "conventional": _tp_cell(4.0, 60.0)},
            {"plb": weak, "conventional": _tp_cell(4.0, 60.0)},
        )
        assert len(failures) == 1
        assert "floor" in failures[0]

    def test_missing_model_ratio_fails(self):
        current = {"conventional": _tp_cell(4.0, 60.0)}
        failures = check_throughput(current, TP_BASELINE)
        assert len(failures) == 2
        assert all("plb" in line and "missing" in line for line in failures)

    def test_malformed_ratio_cell_is_a_named_failure(self):
        baseline = {"plb": {"recipe_speedup": None, "fused_speedup": 40.0}}
        failures = check_throughput({"plb": _tp_cell()}, baseline)
        assert len(failures) == 1
        assert "malformed" in failures[0] and "recipe_speedup" in failures[0]

    def test_non_dict_cell_is_a_named_failure(self):
        failures = check_throughput({"plb": _tp_cell()}, {"plb": 3.0})
        assert len(failures) == 1
        assert "malformed" in failures[0]

    def test_improvement_never_fails(self):
        current = {
            "plb": _tp_cell(recipe=30.0, fused=400.0, ratio=100.0),
            "conventional": _tp_cell(recipe=40.0, fused=600.0, ratio=100.0),
        }
        assert check_throughput(current, TP_BASELINE) == []


def test_main_missing_baseline_exits_2(tmp_path, capsys):
    # Baseline validation runs before the slow measurement, so these
    # main()-level paths are cheap to pin.
    assert main(["--baseline", str(tmp_path / "nope.json")]) == 2
    assert "run with --update first" in capsys.readouterr().err


def test_main_baseline_without_cycles_key_exits_1(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    path.write_text('{"threshold": 0.1}\n')
    assert main(["--baseline", str(path)]) == 1
    assert "no 'cycles' matrix" in capsys.readouterr().err


def test_main_invalid_json_baseline_exits_1(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    path.write_text("{truncated")
    assert main(["--baseline", str(path)]) == 1
    assert "not valid JSON" in capsys.readouterr().err
