"""The bench-regression gate's comparison logic (tools/).

Pins the contract that a baseline Table 1 cell missing from the current
run is a hard failure — silently dropping a (workload, model) cell must
not read as "no regression".
"""

from __future__ import annotations

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

from check_bench_regression import THRESHOLD, check  # noqa: E402


BASELINE = {
    "attach": {"plb": 1000, "pagegroup": 2000},
    "gc": {"plb": 500},
}


def test_within_threshold_passes():
    current = {
        "attach": {"plb": int(1000 * (1 + THRESHOLD)), "pagegroup": 2000},
        "gc": {"plb": 500},
    }
    assert check(current, BASELINE) == []


def test_growth_beyond_threshold_fails():
    current = {
        "attach": {"plb": 1200, "pagegroup": 2000},
        "gc": {"plb": 500},
    }
    failures = check(current, BASELINE)
    assert len(failures) == 1
    assert "attach / plb" in failures[0]
    assert "+20.0%" in failures[0]


def test_missing_cell_fails():
    current = {
        "attach": {"plb": 1000},  # pagegroup cell vanished
        "gc": {"plb": 500},
    }
    failures = check(current, BASELINE)
    assert len(failures) == 1
    assert "attach / pagegroup" in failures[0]
    assert "missing" in failures[0]


def test_missing_workload_fails_every_cell():
    failures = check({"attach": BASELINE["attach"]}, BASELINE)
    assert failures == ["gc / plb: cell missing from current run"]


def test_improvement_never_fails():
    current = {
        "attach": {"plb": 1, "pagegroup": 1},
        "gc": {"plb": 1},
    }
    assert check(current, BASELINE) == []


def test_zero_baseline_cell_does_not_divide_by_zero():
    assert check({"gc": {"plb": 7}}, {"gc": {"plb": 0}}) == []
