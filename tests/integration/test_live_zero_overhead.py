"""Zero-overhead-when-off contract for the serve-mode live hooks.

Serve mode attaches tracers, live collectors, arrival processes, and a
continuous fault injector.  None of that may perturb a batch run that
does not ask for it: with no collector attached, the seeded mixed-verb
scenario must stay byte-identical to the committed single-CPU golden
(``benchmarks/baselines/single_cpu_stats.json``) even after every
serve-mode module has been imported and exercised in-process.
"""

from __future__ import annotations

import json
import pathlib

import pytest

# Importing the serve stack up front is part of the contract under test:
# module import alone must not register hooks anywhere.
import repro.obs.live  # noqa: F401
import repro.serve.driver  # noqa: F401
import repro.serve.exporters  # noqa: F401
import repro.workloads.openloop  # noqa: F401
from repro.analysis.table1 import run_rpc
from repro.obs.live import LiveCollector
from repro.os.kernel import MODELS

from tests.integration.test_single_cpu_baseline import drive

BASELINE = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "baselines"
    / "single_cpu_stats.json"
)


def _golden() -> dict[str, dict[str, int]]:
    return json.loads(BASELINE.read_text())


@pytest.mark.parametrize("model", MODELS)
def test_batch_run_matches_golden_with_live_modules_imported(model):
    assert drive(model) == _golden()[model]


@pytest.mark.parametrize("model", MODELS)
def test_detached_collector_does_not_perturb_batch_runs(model):
    """A constructed-but-unattached collector is invisible to the kernel."""
    collector = LiveCollector(model)
    counts = drive(model)
    assert counts == _golden()[model]
    # Nothing leaked into the collector either.
    assert collector.requests.total == 0
    assert collector.verb_sketches == {}


def test_workload_batch_output_unchanged_by_live_stack():
    """A Table 1 workload run (the `workload` CLI path) is reproducible
    with the live stack resident in the process."""
    first = run_rpc(models=("plb",)).stats_by_model["plb"].as_dict()
    LiveCollector("plb")  # resident but unattached
    second = run_rpc(models=("plb",)).stats_by_model["plb"].as_dict()
    assert first == second


def test_serve_run_leaves_no_residue_in_fresh_kernels():
    """After a full serve run in-process, batch kernels still match."""
    from repro.serve.driver import ServeConfig, run_serve

    run_serve(
        ServeConfig(duration_ms=40, seed=3, models=("plb",), plan="mixed")
    )
    for model in MODELS:
        assert drive(model) == _golden()[model]
