"""Differential oracle as a tier-1 suite, plus its bug-detection teeth.

The parametrized half replays seeded scenario streams through all three
memory systems in lockstep against the gold model and requires zero
divergence.  The second half proves the oracle actually catches the bug
class it was built for: re-injecting the historical first-hit-stop
``ProtectionLookasideBuffer.invalidate`` (which left stale sibling-level
entries granting revoked rights) must produce a divergence with a
minimized, replayable repro dump, and the structural invariant sweep
must independently flag the stale entry.
"""

from __future__ import annotations

import pytest

from repro.check import SCENARIOS, check_invariants, ops_from_dicts, run_check
from repro.check.differ import DifferentialHarness, minimize_ops
from repro.check.ops import (
    Attach,
    CreateDomain,
    CreateSegment,
    SetPageRights,
    SetSegmentRights,
    Touch,
)
from repro.core.params import DEFAULT_PARAMS
from repro.core.plb import PLBKey, ProtectionLookasideBuffer
from repro.core.rights import AccessType, Rights

SEEDS = (0, 1, 2)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", SEEDS)
def test_models_agree_with_gold(scenario, seed):
    result = run_check(scenario, seed, n_ops=120)
    assert result.ok, result.divergence.describe()
    assert result.refs_checked > 0


def test_single_model_subset_runs():
    result = run_check("fuzz", 0, ("pagegroup",), n_ops=80)
    assert result.ok


# --------------------------------------------------------------------- #
# Injected mutation: the stale-rights bug the oracle was built to catch


def _first_hit_stop_invalidate(self, pd_id, vaddr):
    """The pre-fix bug: stop at the first level that hits."""
    for level in self.levels:
        key = PLBKey(pd_id, self.unit_for(vaddr, level), level)
        if self._store.invalidate(key):
            self.stats.inc(f"{self.name}.invalidate")
            return 1
    return 0


def _stale_rights_ops():
    """Directed sequence leaving a stale level-0 RW entry under the bug.

    The domain ends up holding entries at both configured levels (0 and
    2) for the same page; the final revocation must sweep both, and the
    buggy invalidate removes only the superpage entry.
    """
    va = DEFAULT_PARAMS.vaddr
    return [
        CreateDomain("d"),
        CreateSegment("s", 8, True),
        Attach(1, 1, Rights.RW),
        Touch(1, va(0x100), AccessType.READ),        # fills level-2 RW
        SetPageRights(1, 0x100, Rights.READ),        # invalidate, refill L0
        Touch(1, va(0x100), AccessType.READ),        # fills level-0 READ
        Touch(1, va(0x101), AccessType.READ),        # fills level-0 RW
        SetSegmentRights(1, 1, Rights.RW),           # sweeps L0 in place
        Touch(1, va(0x102), AccessType.READ),        # fills level-2 RW again
        SetPageRights(1, 0x100, Rights.NONE),        # must remove BOTH levels
        Touch(1, va(0x100), AccessType.READ),        # stale L0 grants this
    ]


@pytest.fixture
def buggy_invalidate(monkeypatch):
    monkeypatch.setattr(
        ProtectionLookasideBuffer, "invalidate", _first_hit_stop_invalidate
    )


def _harness():
    return DifferentialHarness(("plb",), scenario=SCENARIOS["fuzz"])


def test_directed_sequence_clean_on_fixed_plb():
    report = _harness().run(_stale_rights_ops())
    assert report.ok, report.divergence.describe()


def test_injected_stale_rights_bug_is_caught(buggy_invalidate):
    report = _harness().run(_stale_rights_ops())
    assert not report.ok
    divergence = report.divergence
    assert divergence.model == "plb"
    assert divergence.kind == "outcome"
    assert divergence.expected == "prot/denied"
    assert divergence.observed == "allowed"


def test_injected_bug_survives_minimization_and_replays(buggy_invalidate):
    ops = _stale_rights_ops()
    minimized = minimize_ops(_harness, ops)
    assert 0 < len(minimized) <= len(ops)
    # The minimized stream must still reproduce after a serialization
    # round trip — that is what makes the dump a repro.
    replayed = ops_from_dicts(op.to_dict() for op in minimized)
    assert not _harness().run(replayed).ok


def test_injected_bug_flagged_by_invariant_sweep(buggy_invalidate):
    # Even without the final touch misclassifying a reference, the
    # harness's trailing structural sweep flags the stale PLB entry.
    harness = _harness()
    report = harness.run(_stale_rights_ops()[:-1])  # stop before the touch
    assert not report.ok
    assert report.divergence.kind == "invariant"
    assert "excess" in report.divergence.observed
    problems = check_invariants(harness.kernels["plb"])
    assert any("excess" in line for line in problems)


def test_run_check_dump_carries_span_trail():
    """A divergence dump includes ops, divergence and the span trail."""
    import json

    from repro.check.differ import CheckRunResult, Divergence

    result = CheckRunResult(
        scenario="fuzz", seed=0, models=("plb",), ok=False,
        ops_total=3, refs_checked=1,
        divergence=Divergence(
            op_index=2, op=_stale_rights_ops()[0], model="plb",
            kind="outcome", expected="prot/denied", observed="allowed",
        ),
        minimized=_stale_rights_ops()[:3],
        span_trail=["kernel.attach(pd=1)"],
    )
    dump = json.loads(json.dumps(result.dump()))
    assert dump["divergence"]["model"] == "plb"
    assert len(dump["ops"]) == 3
    assert dump["span_trail"] == ["kernel.attach(pd=1)"]
    assert ops_from_dicts(dump["ops"]) == _stale_rights_ops()[:3]
