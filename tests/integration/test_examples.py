"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parents[2].joinpath("examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example explains itself


def test_all_nine_examples_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 9
