"""Differential testing: the kernel versus a naive reference oracle.

The oracle tracks what every domain should be able to do using plain
dictionaries and the paper's stated semantics for each model.  Random
operation sequences (attach, detach, rights changes at page and segment
granularity, switches, touches) are applied to both; any divergence in
allow/deny decisions is a bug in the hardware structures' maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rights import AccessType, Rights
from repro.os.kernel import Kernel, SegmentationViolation
from repro.sim.machine import Machine

N_DOMAINS = 3
N_SEGMENTS = 2
PAGES = 4


@dataclass
class OracleState:
    """Reference semantics, per model."""

    model: str
    #: (pd, seg) -> attachment rights.
    attachments: dict[tuple[int, int], Rights] = field(default_factory=dict)
    #: domain-page models: (pd, vpn) -> override.
    overrides: dict[tuple[int, int], Rights] = field(default_factory=dict)
    #: page-group model: vpn -> (owning 'context', rights).  The context
    #: is the segment for untouched pages or the domain that last did a
    #: per-page change.
    page_ctx: dict[int, tuple[str, int, Rights]] = field(default_factory=dict)

    def attach(self, pd: int, seg: int, seg_pages: list[int], rights: Rights) -> None:
        self.attachments[(pd, seg)] = rights

    def detach(self, pd: int, seg: int, seg_pages: list[int]) -> None:
        self.attachments.pop((pd, seg), None)
        for vpn in seg_pages:
            self.overrides.pop((pd, vpn), None)

    def set_page_rights(self, pd: int, seg: int, vpn: int, rights: Rights) -> None:
        if self.model == "pagegroup":
            self.page_ctx[vpn] = ("domain", pd, rights)
        else:
            self.overrides[(pd, vpn)] = rights

    def set_segment_rights(self, pd: int, seg: int, seg_pages: list[int],
                           rights: Rights) -> None:
        self.attachments[(pd, seg)] = rights
        for vpn in seg_pages:
            self.overrides.pop((pd, vpn), None)
            if self.model == "pagegroup":
                # A whole-segment change adjusts the PID write-disable
                # bit; pages moved to private groups are unaffected.
                pass

    def allowed(self, pd: int, seg: int, vpn: int, access: AccessType) -> bool:
        attachment = self.attachments.get((pd, seg))
        if self.model == "pagegroup":
            ctx = self.page_ctx.get(vpn)
            if ctx is not None:
                kind, owner, rights = ctx
                # A page moved to a domain-private group is reachable
                # only by that domain, with the recorded rights.
                return owner == pd and rights.allows(access)
            if attachment is None or attachment == Rights.NONE:
                return False
            # Segment-group pages: RW rights field masked by the PID
            # write-disable bit from the attachment.
            effective = Rights.RW if attachment & Rights.WRITE else Rights.READ
            return effective.allows(access)
        if attachment is None:
            return False
        rights = self.overrides.get((pd, vpn), attachment)
        return rights.allows(access)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("attach"), st.integers(0, N_DOMAINS - 1),
                  st.integers(0, N_SEGMENTS - 1),
                  st.sampled_from([Rights.READ, Rights.RW])),
        st.tuples(st.just("detach"), st.integers(0, N_DOMAINS - 1),
                  st.integers(0, N_SEGMENTS - 1), st.none()),
        st.tuples(st.just("page_rights"), st.integers(0, N_DOMAINS - 1),
                  st.integers(0, N_SEGMENTS * PAGES - 1),
                  st.sampled_from([Rights.NONE, Rights.READ, Rights.RW])),
        st.tuples(st.just("seg_rights"), st.integers(0, N_DOMAINS - 1),
                  st.integers(0, N_SEGMENTS - 1),
                  st.sampled_from([Rights.READ, Rights.RW])),
        st.tuples(st.just("touch"), st.integers(0, N_DOMAINS - 1),
                  st.integers(0, N_SEGMENTS * PAGES - 1),
                  st.sampled_from([AccessType.READ, AccessType.WRITE])),
    ),
    min_size=1,
    max_size=50,
)


class TestKernelAgainstOracle:
    @settings(max_examples=40, deadline=None)
    @pytest.mark.parametrize("model", ["plb", "conventional", "pagegroup"])
    @given(ops=operations)
    def test_allow_deny_matches_oracle(self, model, ops):
        kernel = Kernel(model)
        machine = Machine(kernel)
        domains = [kernel.create_domain(f"d{i}") for i in range(N_DOMAINS)]
        segments = [kernel.create_segment(f"s{i}", PAGES) for i in range(N_SEGMENTS)]
        oracle = OracleState(model=model)

        def page(global_index: int) -> tuple[int, int]:
            seg_index = global_index // PAGES
            return seg_index, segments[seg_index].vpn_at(global_index % PAGES)

        for op, d_idx, arg, extra in ops:
            domain = domains[d_idx]
            if op == "attach":
                seg = segments[arg]
                if not domain.is_attached(seg.seg_id):
                    kernel.attach(domain, seg, extra)
                    oracle.attach(domain.pd_id, arg, list(seg.vpns()), extra)
            elif op == "detach":
                seg = segments[arg]
                if domain.is_attached(seg.seg_id):
                    kernel.detach(domain, seg)
                    oracle.detach(domain.pd_id, arg, list(seg.vpns()))
            elif op == "page_rights":
                seg_index, vpn = page(arg)
                if domain.is_attached(segments[seg_index].seg_id):
                    kernel.set_page_rights(domain, vpn, extra)
                    oracle.set_page_rights(domain.pd_id, seg_index, vpn, extra)
            elif op == "seg_rights":
                seg = segments[arg]
                if domain.is_attached(seg.seg_id):
                    kernel.set_segment_rights(domain, seg, extra)
                    oracle.set_segment_rights(
                        domain.pd_id, arg, list(seg.vpns()), extra
                    )
            else:  # touch
                seg_index, vpn = page(arg)
                expected = oracle.allowed(domain.pd_id, seg_index, vpn, extra)
                try:
                    machine.touch(domain, kernel.params.vaddr(vpn), extra)
                    observed = True
                except SegmentationViolation:
                    observed = False
                assert observed == expected, (
                    f"{model}: domain {domain.pd_id} {extra.value} on page "
                    f"{vpn:#x}: kernel={'allow' if observed else 'deny'}, "
                    f"oracle={'allow' if expected else 'deny'}"
                )
