"""Whole-OS integration: every service running together on one kernel.

A single kernel hosts, simultaneously: a compressing user-level pager, a
copy-on-write snapshot, a segment-server append-only log, an RPC
client/server pair and a transactional database, while the GC-style
fault handlers churn rights.  The point is layered fault handling: five
services registered handlers; each fault must reach exactly the right
one, and the system must end in a consistent state.
"""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.os.cow import CopyOnWriteManager
from repro.os.kernel import Kernel, SegmentationViolation
from repro.os.pager import UserLevelPager
from repro.os.segserver import AppendOnlyLogServer, SegmentServerRegistry
from repro.sim.machine import Machine

MODELS = ("plb", "pagegroup", "conventional")


@pytest.mark.parametrize("model", MODELS)
def test_all_services_coexist(model):
    kernel = Kernel(model, n_frames=2048)
    machine = Machine(kernel)

    # Service 1: the pager (registers page + protection handlers).
    pager = UserLevelPager(kernel, compress=True)
    # Service 2: COW (registers a protection handler).
    cow = CopyOnWriteManager(kernel)
    # Service 3: segment servers (register both handler kinds).
    registry = SegmentServerRegistry(kernel)

    app = kernel.create_domain("app")
    service = kernel.create_domain("service")

    # An ordinary working segment, paged under pressure.
    work = kernel.create_segment("work", 8)
    kernel.attach(app, work, Rights.RW)

    # A COW snapshot of the working segment.
    for vpn in work.vpns():
        kernel.memory.write_page(kernel.translations.pfn_for(vpn), b"base" + bytes(32))
    snapshot = cow.create_copy(work, "work-snapshot")
    kernel.attach(service, snapshot, Rights.READ)

    # An append-only log with both domains admitted.
    log_segment = kernel.create_segment("log", 4)
    log = AppendOnlyLogServer(kernel, registry, log_segment)
    log.admit(app)
    log.admit(service, reader_only=True)

    params = kernel.params

    # --- Exercise everything, interleaved. -----------------------------
    # 1. The app writes its working set (COW breaks page by page).
    for vpn in work.vpns():
        machine.write(app, params.vaddr(vpn))
    assert kernel.stats["cow.breaks"] == 8
    # The snapshot still holds the original bytes.
    snap_pfn = kernel.translations.pfn_for(snapshot.base_vpn)
    assert kernel.memory.read_page(snap_pfn).startswith(b"base")

    # 2. The pager evicts half the working set; touches page back in.
    for vpn in list(work.vpns())[:4]:
        pager.page_out(vpn)
    for vpn in work.vpns():
        machine.read(app, params.vaddr(vpn))
    assert kernel.stats["pager.page_in"] == 4

    # 3. The app appends past a page boundary in the log; the service
    #    reads the sealed history.
    for record in range(2 * (params.page_size // 512)):
        machine.write(app, params.vaddr(log_segment.base_vpn) + record * 512)
    assert log.frontier >= 1
    machine.read(service, params.vaddr(log_segment.base_vpn))

    # 4. Protection still airtight: the service cannot write the log or
    #    the app's private pages.
    with pytest.raises(SegmentationViolation):
        machine.write(service, params.vaddr(log_segment.base_vpn))
    with pytest.raises(SegmentationViolation):
        machine.write(service, params.vaddr(work.base_vpn))

    # 5. RPC-style ping-pong still one-register cheap on the PLB model.
    switches_before = kernel.stats["pdid.write"]
    for _ in range(5):
        machine.read(app, params.vaddr(work.base_vpn))
        machine.read(service, params.vaddr(snapshot.base_vpn))
    assert kernel.stats["pdid.write"] > switches_before

    # --- Global invariants after the dust settles. ----------------------
    # One translation per resident page; one page per frame.
    seen_frames: set[int] = set()
    for vpn in kernel.translations.resident_vpns():
        pfn = kernel.translations.pfn_for(vpn)
        assert pfn not in seen_frames or cow.is_shared(vpn)
        seen_frames.add(pfn)
    # Memory accounting balances.
    assert kernel.memory.free_frames + kernel.memory.used_frames == 2048


@pytest.mark.parametrize("model", MODELS)
def test_destroying_everything_releases_memory(model):
    kernel = Kernel(model, n_frames=512)
    machine = Machine(kernel)
    domain = kernel.create_domain("d")
    free_start = kernel.memory.free_frames
    segments = [kernel.create_segment(f"s{i}", 8) for i in range(6)]
    for segment in segments:
        kernel.attach(domain, segment, Rights.RW)
        machine.write(domain, kernel.params.vaddr(segment.base_vpn))
    for segment in segments:
        kernel.destroy_segment(segment)
    assert kernel.memory.free_frames == free_start
    assert kernel.memory.used_frames == 0
