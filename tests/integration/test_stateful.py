"""Stateful model-based testing of the kernel (hypothesis rule machine).

Hypothesis drives arbitrary interleavings of the kernel API — domain and
segment creation, attach/detach, rights changes, touches, switches —
checking after every step that the hardware never disagrees with a
shadow model of the domain-page semantics, and that memory accounting
stays exact.  Run on the PLB system (the conventional system shares the
same OS-level semantics; the page-group model's divergent per-domain
semantics are covered by the oracle test).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.mmu import PLBSystem
from repro.core.rights import AccessType, Rights
from repro.os.kernel import Kernel, SegmentationViolation
from repro.sim.machine import Machine

N_FRAMES = 512


class KernelMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.kernel = Kernel("plb", n_frames=N_FRAMES)
        self.machine = Machine(self.kernel)
        #: Shadow model: (pd_id, vpn) -> expected rights (None = no access).
        self.shadow: dict[tuple[int, int], Rights] = {}

    domains = Bundle("domains")
    segments = Bundle("segments")

    # ------------------------------------------------------------------ #
    # Rules

    @rule(target=domains)
    def create_domain(self):
        return self.kernel.create_domain(f"d{len(self.kernel.domains)}")

    @rule(target=segments, pages=st.integers(1, 4))
    def create_segment(self, pages):
        if self.kernel.memory.free_frames < pages:
            return None
        return self.kernel.create_segment(
            f"s{len(self.kernel.segments)}", pages
        )

    @rule(domain=domains, segment=segments,
          rights=st.sampled_from([Rights.READ, Rights.RW]))
    def attach(self, domain, segment, rights):
        if segment is None or domain.is_attached(segment.seg_id):
            return
        if segment.seg_id not in self.kernel.segments:
            return  # destroyed
        self.kernel.attach(domain, segment, rights)
        for vpn in segment.vpns():
            self.shadow[(domain.pd_id, vpn)] = rights

    @rule(domain=domains, segment=segments)
    def detach(self, domain, segment):
        if segment is None or not domain.is_attached(segment.seg_id):
            return
        if segment.seg_id not in self.kernel.segments:
            return
        self.kernel.detach(domain, segment)
        for vpn in segment.vpns():
            self.shadow.pop((domain.pd_id, vpn), None)

    @rule(domain=domains, segment=segments, page=st.integers(0, 3),
          rights=st.sampled_from([Rights.NONE, Rights.READ, Rights.RW]))
    def set_page_rights(self, domain, segment, page, rights):
        if segment is None or not domain.is_attached(segment.seg_id):
            return
        if segment.seg_id not in self.kernel.segments:
            return
        vpn = segment.vpn_at(page % segment.n_pages)
        self.kernel.set_page_rights(domain, vpn, rights)
        self.shadow[(domain.pd_id, vpn)] = rights

    @rule(domain=domains, segment=segments, page=st.integers(0, 3),
          write=st.booleans())
    def touch(self, domain, segment, page, write):
        if segment is None or segment.seg_id not in self.kernel.segments:
            return
        vpn = segment.vpn_at(page % segment.n_pages)
        access = AccessType.WRITE if write else AccessType.READ
        expected = self.shadow.get((domain.pd_id, vpn), Rights.NONE)
        try:
            self.machine.touch(domain, self.kernel.params.vaddr(vpn), access)
            allowed = True
        except SegmentationViolation:
            allowed = False
        assert allowed == expected.allows(access), (
            f"domain {domain.pd_id} {access.value} page {vpn:#x}: hardware "
            f"{'allowed' if allowed else 'denied'}, shadow says "
            f"{expected.describe()}"
        )

    @rule(domain=domains)
    def switch(self, domain):
        self.kernel.switch_to(domain)

    # ------------------------------------------------------------------ #
    # Invariants (checked after every rule)

    @invariant()
    def memory_conserved(self):
        memory = self.kernel.memory
        assert memory.free_frames + memory.used_frames == N_FRAMES

    @invariant()
    def plb_never_contradicts_tables(self):
        system = self.kernel.system
        assert isinstance(system, PLBSystem)
        for key, entry in system.plb.items():
            info = self.kernel.rights_for(key.pd_id, key.unit)
            table_rights = info.rights if info is not None else None
            # A resident entry may be stale only toward *less* access
            # than the tables grant, never more — and in this machine
            # (all changes go through kernel verbs) it must be exact or
            # the domain was detached (entry swept, so unreachable).
            if table_rights is not None:
                assert entry.rights == table_rights


KernelMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestKernelStateMachine = KernelMachine.TestCase
