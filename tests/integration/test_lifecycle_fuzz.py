"""Lifecycle fuzzing: random create/attach/touch/destroy sequences.

Segment lifecycles interleaved across domains must conserve physical
memory exactly and never leave a destroyed segment reachable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rights import Rights
from repro.os.kernel import Kernel, SegmentationViolation
from repro.sim.machine import Machine

N_FRAMES = 256

lifecycle_ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.integers(1, 6)),
        st.tuples(st.just("attach"), st.integers(0, 9)),
        st.tuples(st.just("touch"), st.integers(0, 9)),
        st.tuples(st.just("destroy"), st.integers(0, 9)),
    ),
    min_size=1,
    max_size=40,
)


class TestLifecycleFuzz:
    @settings(max_examples=30, deadline=None)
    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    @given(ops=lifecycle_ops)
    def test_memory_conserved_and_dead_segments_unreachable(self, model, ops):
        kernel = Kernel(model, n_frames=N_FRAMES)
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        live: list = []
        dead: list = []
        for op, arg in ops:
            if op == "create":
                if kernel.memory.free_frames >= arg:
                    live.append(kernel.create_segment(f"s{len(live)}", arg))
            elif op == "attach" and live:
                segment = live[arg % len(live)]
                if not domain.is_attached(segment.seg_id):
                    kernel.attach(domain, segment, Rights.RW)
            elif op == "touch" and live:
                segment = live[arg % len(live)]
                if domain.is_attached(segment.seg_id):
                    machine.write(domain, kernel.params.vaddr(segment.base_vpn))
            elif op == "destroy" and live:
                segment = live.pop(arg % len(live))
                kernel.destroy_segment(segment)
                dead.append(segment)
        # Conservation: live segments account for exactly the used frames.
        live_pages = sum(segment.n_pages for segment in live)
        assert kernel.memory.used_frames == live_pages
        assert kernel.memory.free_frames == N_FRAMES - live_pages
        # Dead segments are unreachable even where still "attached".
        for segment in dead[-3:]:
            with pytest.raises(SegmentationViolation):
                machine.read(domain, kernel.params.vaddr(segment.base_vpn))
