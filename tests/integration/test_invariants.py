"""Cross-model invariant tests (the DESIGN.md §7 list), several driven
by hypothesis over random operation sequences."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mmu import PLBSystem, ProtectionFault, PageFault
from repro.core.rights import AccessType, Rights
from repro.os.kernel import Kernel, SegmentationViolation
from repro.sim.machine import Machine

MODELS = ("plb", "pagegroup", "conventional")


class TestSASOSInvariants:
    @pytest.mark.parametrize("model", MODELS)
    def test_one_translation_per_vpn(self, model):
        """No homonyms: a VPN has at most one frame, ever."""
        kernel = Kernel(model)
        segments = [kernel.create_segment(f"s{i}", 4) for i in range(4)]
        seen: dict[int, int] = {}
        for segment in segments:
            for vpn in segment.vpns():
                pfn = kernel.translations.pfn_for(vpn)
                assert pfn is not None
                assert vpn not in seen
                seen[vpn] = pfn

    @pytest.mark.parametrize("model", MODELS)
    def test_one_vpn_per_frame(self, model):
        """No synonyms: each frame backs exactly one virtual page."""
        kernel = Kernel(model)
        for i in range(4):
            kernel.create_segment(f"s{i}", 4)
        frames: dict[int, int] = {}
        for vpn in kernel.translations.resident_vpns():
            pfn = kernel.translations.pfn_for(vpn)
            assert pfn not in frames
            frames[pfn] = vpn

    @pytest.mark.parametrize("model", MODELS)
    def test_vivt_cache_never_duplicates_physical_lines(self, model):
        """The §2.2 payoff: a SASOS VIVT cache holds each physical line
        in exactly one place."""
        kernel = Kernel(
            model,
            system_options={"detect_hazards": True}
            if model == "plb"
            else {"detect_hazards": True},
        )
        machine = Machine(kernel)
        domains = [kernel.create_domain(f"d{i}") for i in range(3)]
        segment = kernel.create_segment("shared", 8)
        for domain in domains:
            kernel.attach(domain, segment, Rights.RW)
        for repeat in range(2):
            for domain in domains:
                for vpn in segment.vpns():
                    machine.write(domain, kernel.params.vaddr(vpn, 64))
        assert kernel.stats["dcache.synonym_hazard"] == 0
        assert kernel.stats["dcache.homonym_hazard"] == 0


class TestHardwareNeverExceedsTables:
    """The hardware can never grant rights beyond the OS tables."""

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 2),  # domain index
                st.integers(0, 7),  # page index
                st.sampled_from([Rights.NONE, Rights.READ, Rights.RW]),
                st.booleans(),  # write access?
            ),
            min_size=1,
            max_size=40,
        ),
        model=st.sampled_from(MODELS),
    )
    def test_random_rights_churn(self, ops, model):
        kernel = Kernel(model)
        machine = Machine(kernel)
        domains = [kernel.create_domain(f"d{i}") for i in range(3)]
        segment = kernel.create_segment("s", 8)
        for domain in domains:
            kernel.attach(domain, segment, Rights.READ)
        current: dict[tuple[int, int], Rights] = {
            (d.pd_id, vpn): Rights.READ for d in domains for vpn in segment.vpns()
        }
        for d_idx, p_idx, rights, write in ops:
            domain = domains[d_idx]
            vpn = segment.vpn_at(p_idx)
            kernel.set_page_rights(domain, vpn, rights)
            if model == "pagegroup":
                # Per-domain changes move pages between groups and so
                # change *other* domains' access; recompute from tables.
                for other in domains:
                    info = kernel.rights_for(other.pd_id, vpn)
                    aid = kernel.group_table.aid_of(vpn)
                    page_rights = kernel.group_table.rights_of(vpn)
                    holds = other.holds_group(aid)
                    entry = other.groups.get(aid)
                    effective = (
                        (page_rights.without_write()
                         if entry and entry.write_disable else page_rights)
                        if holds else Rights.NONE
                    )
                    current[(other.pd_id, vpn)] = effective
            else:
                current[(domain.pd_id, vpn)] = rights
            access = AccessType.WRITE if write else AccessType.READ
            allowed = current[(domain.pd_id, vpn)].allows(access)
            try:
                machine.touch(domain, kernel.params.vaddr(vpn), access)
                assert allowed, (
                    f"{model}: access granted but tables say "
                    f"{current[(domain.pd_id, vpn)].describe()}"
                )
            except SegmentationViolation:
                assert not allowed, (
                    f"{model}: access denied but tables say "
                    f"{current[(domain.pd_id, vpn)].describe()}"
                )


class TestConvergenceAfterChange:
    @pytest.mark.parametrize("model", MODELS)
    def test_rights_change_visible_within_one_fault(self, model):
        """DESIGN.md §7: structures converge to new rights within one
        fault at most."""
        kernel = Kernel(model)
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 2)
        kernel.attach(domain, segment, Rights.READ)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.read(domain, vaddr)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.RW)
        result = machine.write(domain, vaddr)
        assert result.protection_faults <= 1

    @pytest.mark.parametrize("model", MODELS)
    def test_downgrade_takes_effect_immediately(self, model):
        kernel = Kernel(model)
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 2)
        kernel.attach(domain, segment, Rights.RW)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.write(domain, vaddr)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.READ)
        with pytest.raises(SegmentationViolation):
            machine.write(domain, vaddr)


class TestPLBInclusion:
    @settings(max_examples=25, deadline=None)
    @given(
        touches=st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 7)),
            min_size=1, max_size=50,
        )
    )
    def test_resident_plb_entries_match_protection_tables(self, touches):
        """Inclusion: every resident PLB entry equals the table rights."""
        kernel = Kernel("plb")
        machine = Machine(kernel)
        domains = [kernel.create_domain(f"d{i}") for i in range(2)]
        segment = kernel.create_segment("s", 8)
        kernel.attach(domains[0], segment, Rights.RW)
        kernel.attach(domains[1], segment, Rights.READ)
        for d_idx, p_idx in touches:
            domain = domains[d_idx]
            vpn = segment.vpn_at(p_idx)
            try:
                machine.read(domain, kernel.params.vaddr(vpn))
            except SegmentationViolation:
                pass
        system = kernel.system
        assert isinstance(system, PLBSystem)
        for key, entry in system.plb.items():
            info = kernel.rights_for(key.pd_id, key.unit)
            assert info is not None
            assert entry.rights == info.rights
