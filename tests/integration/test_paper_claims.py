"""The paper's claims as executable checks, one test per claim.

This file is the machine-checkable core of EXPERIMENTS.md: each test
reruns a (small) configuration of the relevant experiment and asserts
the paper's stated number or direction.  If the implementation drifts
from the paper, this file is what fails.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import figure1_fields, figure2_check_matrix
from repro.core.costs import (
    critical_path,
    cycles_for,
    plb_size_advantage,
    vivt_overhead_ratio,
)
from repro.core.rights import Rights
from repro.os.kernel import Kernel
from repro.sim.machine import Machine
from repro.workloads.attach import AttachConfig, AttachDetachWorkload
from repro.workloads.rpc import RPCConfig, RPCWorkload
from repro.workloads.txn import TransactionalVM, TxnConfig


class TestFigureClaims:
    def test_claim_fig1_field_widths(self):
        """Figure 1: 52-bit VPN, 16-bit PD-ID, 3-bit rights."""
        fields = figure1_fields()
        assert (fields.vpn_bits, fields.pd_id_bits, fields.rights_bits) == (52, 16, 3)

    def test_claim_fig2_check_semantics(self):
        """Figure 2: every protection-check scenario behaves as drawn."""
        assert all(entry["matches"] for entry in figure2_check_matrix())


class TestQuantitativeClaims:
    def test_claim_s4_plb_entries_about_25pct_smaller(self):
        """§4: 'about 25%, assuming the field sizes in Figure 1 and a
        physical address of 36 bits'."""
        assert 0.20 <= plb_size_advantage() <= 0.30

    def test_claim_s321_vivt_about_10pct_larger(self):
        """§3.2.1: 'a virtually tagged cache would be about 10% larger'."""
        assert 1.07 <= vivt_overhead_ratio(cache_bytes=16 * 1024) <= 1.13

    def test_claim_s42_sequential_pagegroup_check(self):
        """§4.2: the page-group check is two dependent steps; the PLB is
        one (wider) lookup."""
        assert critical_path("pagegroup").sequential_stages == 2
        assert critical_path("plb").sequential_stages == 1
        # The PLB's single compare (VPN+PD-ID) is wider than either of
        # the page-group model's per-stage compares (VPN; AID).
        from repro.core.params import DEFAULT_PARAMS

        plb_compare = critical_path("plb").tag_compare_bits
        assert plb_compare > DEFAULT_PARAMS.vpn_bits
        assert plb_compare > DEFAULT_PARAMS.aid_bits


class TestStructuralClaims:
    def test_claim_s321_translation_not_replicated(self):
        """§3.2.1: 'the TLB requires only one entry for each
        virtual-to-physical page mapping' on the PLB system."""
        kernel = Kernel("plb")
        machine = Machine(kernel)
        segment = kernel.create_segment("s", 4)
        for index in range(3):
            domain = kernel.create_domain(f"d{index}")
            kernel.attach(domain, segment, Rights.RW)
            for vpn in segment.vpns():
                machine.read(domain, kernel.params.vaddr(vpn))
        assert len(kernel.system.tlb) == 4
        assert kernel.system.plb.entries_for_page(segment.base_vpn) == 3

    def test_claim_s414_plb_switch_is_one_register(self):
        """§4.1.4: 'requires changing only a single register'."""
        report = RPCWorkload(Kernel("plb"), RPCConfig(calls=20)).run()
        assert report.stats["pdid.write"] == report.switches
        assert report.stats["plb.purge"] == 0
        assert report.stats["group_reload"] == 0

    def test_claim_s414_pagegroup_switch_purges_and_reloads(self):
        """§4.1.4: 'involves purging the active page-group cache and
        loading in the page-groups for the new domain'."""
        report = RPCWorkload(Kernel("pagegroup"), RPCConfig(calls=20)).run()
        assert report.stats["pgcache.purge"] >= report.switches
        assert report.stats["group_reload"] > report.switches

    def test_claim_t1_plb_detach_inspects_page_group_does_not(self):
        """Table 1: detach sweeps the PLB; page-group detach is O(1)."""
        config = AttachConfig(segments=4, pages_per_segment=4)
        plb = AttachDetachWorkload(Kernel("plb"), config).run()
        pagegroup = AttachDetachWorkload(Kernel("pagegroup"), config).run()
        assert plb.stats["plb.sweep_inspected"] > 0
        assert pagegroup.stats.total("plb") == 0

    def test_claim_s412_lock_alternation_only_with_domain_groups(self):
        """§4.1.2: per-domain lock groups make shared pages alternate."""
        base = dict(db_pages=16, transactions=6, touches_per_txn=12,
                    concurrent=2, seed=4, write_fraction=0.1, zipf_s=1.5)
        domain_strategy = TransactionalVM(
            Kernel("pagegroup"), TxnConfig(lock_strategy="domain", **base)
        ).run()
        page_strategy = TransactionalVM(
            Kernel("pagegroup"), TxnConfig(lock_strategy="page", **base)
        ).run()
        assert domain_strategy.group_alternations > 0
        assert page_strategy.group_alternations == 0


class TestSectionTwoClaims:
    def test_claim_s22_no_hazards_in_sasos(self):
        """§2.2: 'Neither synonyms nor homonyms need exist on a single
        address space system.'"""
        kernel = Kernel("plb", system_options={"detect_hazards": True,
                                               "cache_ways": 2})
        machine = Machine(kernel)
        segment = kernel.create_segment("shared", 8)
        for index in range(3):
            domain = kernel.create_domain(f"d{index}")
            kernel.attach(domain, segment, Rights.RW)
            for vpn in segment.vpns():
                machine.write(domain, kernel.params.vaddr(vpn, 64))
        assert kernel.stats["dcache.synonym_hazard"] == 0
        assert kernel.stats["dcache.homonym_hazard"] == 0

    def test_claim_s22_multias_has_both_hazards(self):
        """§2.2: multi-AS VIVT caches suffer synonyms and homonyms."""
        from repro.core.rights import AccessType
        from repro.multias.osbase import MultiASOS

        os = MultiASOS(cache_ways=2)
        a = os.create_process("a")
        b = os.create_process("b")
        pfn = os.map_private(a, 0x10)
        os.map_shared(b, 0x11, pfn)  # synonym
        os.map_private(a, 0x90)
        os.map_private(b, 0x90)  # homonym
        os.access(a, 0x10 << 12, AccessType.WRITE)
        os.access(b, 0x11 << 12)
        os.access(a, 0x90 << 12)
        os.access(b, 0x90 << 12)
        assert os.synonym_hazards > 0
        assert os.homonym_hazards > 0

    def test_claim_s21_sharing_by_reference_beats_copying(self):
        """§2.1: passing data by reference avoids copying costs."""
        import dataclasses

        from repro.workloads.fileserver import FileServer, FileServerConfig

        config = FileServerConfig(files=6, file_pages=2, clients=2,
                                  requests=20, lines_per_request=16)
        copy = FileServer(Kernel("plb"), config).run()
        share = FileServer(
            Kernel("plb"), dataclasses.replace(config, mode="share")
        ).run()
        assert share.stats["refs"] < copy.stats["refs"]
        assert cycles_for(share.stats) < cycles_for(copy.stats)


class TestSection31Claims:
    def test_claim_s31_asid_tlb_replicates(self):
        """§3.1: 'Sharing of a page by multiple domains causes
        replication of TLB protection entries.'"""
        kernel = Kernel("conventional")
        machine = Machine(kernel)
        segment = kernel.create_segment("s", 2)
        for index in range(4):
            domain = kernel.create_domain(f"d{index}")
            kernel.attach(domain, segment, Rights.RW)
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        assert kernel.system.tlb.replicas(segment.base_vpn) == 4

    def test_claim_s31_untagged_purge_discards_valid_translations(self):
        """§3.1: 'purging removes ... also the translation information,
        which is the same for all domains.'"""
        kernel = Kernel("conventional", system_options={"asid_tagged": False})
        machine = Machine(kernel)
        segment = kernel.create_segment("s", 2)
        a = kernel.create_domain("a")
        b = kernel.create_domain("b")
        kernel.attach(a, segment, Rights.RW)
        kernel.attach(b, segment, Rights.RW)
        machine.read(a, kernel.params.vaddr(segment.base_vpn))
        fills = kernel.stats["asidtlb.fill"]
        machine.read(b, kernel.params.vaddr(segment.base_vpn))
        # The same translation had to be refetched after the purge.
        assert kernel.stats["asidtlb.fill"] == fills + 1
