"""Cross-model integration: the comparison methodology itself.

The paper's evaluation only makes sense if the same workload does the
same *application-level* work on every model, leaving the hardware
event counts as the only difference.  These tests pin that property for
random traces (hypothesis) and for the packaged workloads.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rights import AccessType, Rights
from repro.os.kernel import Kernel, MODELS
from repro.sim.machine import Machine
from repro.sim.trace import Ref


def build_machine(model: str):
    kernel = Kernel(model)
    machine = Machine(kernel)
    # RWX everywhere: attachment rights for the domain-page models and
    # the page-rights field for the page-group model.
    segment = kernel.create_segment("shared", 16, group_rights=Rights.RWX)
    domains = [kernel.create_domain(f"d{i}") for i in range(3)]
    for domain in domains:
        kernel.attach(domain, segment, Rights.RWX)
    return kernel, machine, segment, domains


trace_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),  # domain index
        st.integers(0, 15),  # page index
        st.integers(0, 4095),  # offset
        st.sampled_from(list(AccessType)),
    ),
    min_size=1,
    max_size=60,
)


class TestTraceDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(ops=trace_strategy)
    def test_same_trace_same_data_outcome_everywhere(self, ops):
        """Any legal trace completes with identical reference counts and
        fault-free steady state on all three models."""
        ref_counts = {}
        for model in MODELS:
            kernel, machine, segment, domains = build_machine(model)
            for d_idx, p_idx, offset, access in ops:
                vaddr = kernel.params.vaddr(segment.vpn_at(p_idx), offset)
                machine.touch(domains[d_idx], vaddr, access)
            ref_counts[model] = kernel.stats["refs"]
        assert len(set(ref_counts.values())) == 1

    @settings(max_examples=20, deadline=None)
    @given(ops=trace_strategy)
    def test_rerun_is_deterministic(self, ops):
        """Two identical runs produce identical full counter trees."""
        def run():
            kernel, machine, segment, domains = build_machine("plb")
            for d_idx, p_idx, offset, access in ops:
                vaddr = kernel.params.vaddr(segment.vpn_at(p_idx), offset)
                machine.touch(domains[d_idx], vaddr, access)
            return kernel.stats.as_dict()

        assert run() == run()


class TestTranslationSharingInvariant:
    @settings(max_examples=15, deadline=None)
    @given(ops=trace_strategy)
    def test_plb_tlb_never_exceeds_unique_pages(self, ops):
        """The PLB system's TLB holds at most one entry per touched page,
        no matter how many domains touch it (§3.2.1)."""
        kernel, machine, segment, domains = build_machine("plb")
        touched = set()
        for d_idx, p_idx, offset, access in ops:
            vaddr = kernel.params.vaddr(segment.vpn_at(p_idx), offset)
            machine.touch(domains[d_idx], vaddr, access)
            touched.add(segment.vpn_at(p_idx))
        assert len(kernel.system.tlb) <= len(touched)
        assert kernel.stats["tlb.fill"] <= len(touched)


class TestWorkloadEquivalence:
    @pytest.mark.parametrize(
        "pair", [("plb", "pagegroup"), ("plb", "conventional")]
    )
    def test_gc_application_work_identical(self, pair):
        from repro.workloads.gc import ConcurrentGC, GCConfig

        config = GCConfig(heap_pages=12, collections=2, mutator_refs_per_cycle=250)
        reports = [ConcurrentGC(Kernel(model), config).run() for model in pair]
        assert reports[0].pages_scanned == reports[1].pages_scanned
        assert reports[0].scan_faults == reports[1].scan_faults

    @pytest.mark.parametrize(
        "pair", [("plb", "pagegroup"), ("pagegroup", "conventional")]
    )
    def test_txn_lock_work_identical(self, pair):
        from repro.workloads.txn import TransactionalVM, TxnConfig

        config = TxnConfig(db_pages=12, transactions=4, touches_per_txn=10)
        reports = [TransactionalVM(Kernel(model), config).run() for model in pair]
        assert reports[0].read_locks == reports[1].read_locks
        assert reports[0].write_locks == reports[1].write_locks
        assert reports[0].commits == reports[1].commits
