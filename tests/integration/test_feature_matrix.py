"""Feature-interaction matrix: extensions enabled together.

The optional substrates — the inverted translation table, the PIPT L2,
translation superpages, protection superpages — were each tested in
isolation; this suite runs real workloads with combinations enabled to
catch interaction bugs (the kind that only appear when, say, a
superpage translation is demoted while an L2 holds its lines).
"""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.os.kernel import Kernel
from repro.sim.machine import Machine
from repro.workloads.gc import ConcurrentGC, GCConfig
from repro.workloads.txn import TransactionalVM, TxnConfig

GC_SMALL = GCConfig(heap_pages=8, collections=2, mutator_refs_per_cycle=150, seed=9)
TXN_SMALL = TxnConfig(db_pages=12, transactions=4, touches_per_txn=8, seed=3)


def plb_kernel_with(**features):
    options = {}
    if features.get("l2"):
        options["l2_cache_bytes"] = 64 * 1024
    if features.get("tlb_super"):
        options["tlb_levels"] = (4, 0)
        options["tlb_entries"] = 64
    if features.get("plb_super"):
        options["plb_levels"] = (3, 0)
    return Kernel(
        "plb",
        system_options=options,
        inverted_table=bool(features.get("inverted")),
    )


FEATURE_SETS = [
    {"inverted": True},
    {"l2": True},
    {"tlb_super": True},
    {"plb_super": True},
    {"inverted": True, "l2": True},
    {"tlb_super": True, "plb_super": True},
    {"inverted": True, "l2": True, "tlb_super": True, "plb_super": True},
]


@pytest.mark.parametrize(
    "features", FEATURE_SETS, ids=lambda f: "+".join(sorted(f))
)
class TestFeatureCombinations:
    def test_gc_runs(self, features):
        kernel = plb_kernel_with(**features)
        report = ConcurrentGC(kernel, GC_SMALL).run()
        assert report.collections == GC_SMALL.collections
        assert report.pages_scanned == report.scan_faults

    def test_txn_runs(self, features):
        kernel = plb_kernel_with(**features)
        report = TransactionalVM(kernel, TXN_SMALL).run()
        assert report.commits == TXN_SMALL.transactions

    def test_basic_protection_intact(self, features):
        from repro.os.kernel import SegmentationViolation

        kernel = plb_kernel_with(**features)
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        other = kernel.create_domain("o")
        segment = kernel.create_segment("s", 8)
        kernel.attach(domain, segment, Rights.RW)
        machine.write(domain, kernel.params.vaddr(segment.base_vpn))
        with pytest.raises(SegmentationViolation):
            machine.read(other, kernel.params.vaddr(segment.base_vpn))


class TestContiguousWithEverything:
    def test_superpage_segment_paged_out_and_back(self):
        """Demotion interaction: a contiguous segment with a superpage
        translation survives paging one of its pages out (demote to
        per-page) while an L2 holds lines."""
        from repro.os.pager import UserLevelPager

        kernel = Kernel(
            "plb",
            system_options={"tlb_levels": (4, 0), "tlb_entries": 16,
                            "l2_cache_bytes": 32 * 1024},
        )
        pager = UserLevelPager(kernel, compress=True)
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("big", 16, contiguous=True)
        kernel.attach(domain, segment, Rights.RW)
        for vpn in segment.vpns():
            machine.write(domain, kernel.params.vaddr(vpn))
        assert kernel.stats["tlb.fill"] == 1  # one superpage entry
        pager.page_out(segment.vpn_at(5))
        # Demoted: the remaining pages refill per page; data intact.
        for vpn in segment.vpns():
            machine.read(domain, kernel.params.vaddr(vpn))
        assert segment.seg_id not in kernel._contiguous
        assert kernel.stats["pager.page_in"] == 1

    def test_cow_of_contiguous_segment(self):
        """COW sharing demotes the source's superpage eligibility is NOT
        required — translations stay per the share; first write breaks
        normally."""
        from repro.os.cow import CopyOnWriteManager

        kernel = Kernel("plb", system_options={"tlb_levels": (4, 0)})
        machine = Machine(kernel)
        cow = CopyOnWriteManager(kernel)
        domain = kernel.create_domain("d")
        source = kernel.create_segment("src", 16, contiguous=True)
        cow.attach(domain, source, Rights.RW)
        copy = cow.create_copy(source, "snap")
        machine.write(domain, kernel.params.vaddr(source.base_vpn))
        assert kernel.translations.pfn_for(source.base_vpn) != \
            kernel.translations.pfn_for(copy.base_vpn)
        # Regression: breaking a page of a contiguous segment must
        # demote its superpage translation — a refilled TLB entry must
        # resolve the broken page to its NEW frame, not the shared one.
        machine.read(domain, kernel.params.vaddr(source.base_vpn))
        entry = kernel.system.tlb.lookup(source.base_vpn)
        assert entry is not None
        assert entry.pfn_for(source.base_vpn) == \
            kernel.translations.pfn_for(source.base_vpn)
        assert segment_demoted(kernel, source)


def segment_demoted(kernel, segment) -> bool:
    return segment.seg_id not in kernel._contiguous
