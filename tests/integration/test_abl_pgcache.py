"""ABL-PGCACHE: the real PA-RISC PID register file vs the paper's cache.

The paper's evaluation replaces the PA-RISC's four page-group (PID)
registers with a Wilkes & Sears LRU cache; the register file is kept for
the ablation comparing the two.  These tests drive the *register*
configuration end to end through the kernel: trap-and-reload when the
group working set exceeds the file, the full purge on every domain
switch, and the Figure 2 D (write-disable) bit masking writes through a
read-only attachment.
"""

from __future__ import annotations

import pytest

from repro.core.pagegroup import PageGroupCache
from repro.core.rights import Rights
from repro.hardware.registers import PIDRegisterFile
from repro.os.kernel import Kernel, SegmentationViolation
from repro.sim.machine import Machine


def make_kernel(**options) -> Kernel:
    merged = {"group_holder": "registers", "group_capacity": 2, **options}
    return Kernel("pagegroup", n_frames=64, system_options=merged)


class TestTrapAndReload:
    def test_registers_holder_is_the_pid_file(self):
        kernel = make_kernel()
        assert isinstance(kernel.system.groups, PIDRegisterFile)
        assert kernel.system.groups.size == 2

    def test_working_set_larger_than_file_round_robins(self):
        """Three live groups over two registers: every rotation through
        the working set evicts a resident group and reloads it on the
        next touch (the PA-RISC multiplexing cost the cache removes)."""
        kernel = make_kernel()
        machine = Machine(kernel)
        domain = kernel.create_domain("app")
        segments = [kernel.create_segment(f"s{i}", 2) for i in range(3)]
        for segment in segments:
            kernel.attach(domain, segment, Rights.RW)
        for segment in segments:  # first touches trap-and-reload the file
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        # Three groups were loaded; only two registers survive.
        assert len(kernel.system.groups.resident_groups()) == 2

        before = kernel.stats.snapshot()
        for _ in range(3):
            for segment in segments:
                machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        delta = kernel.stats.delta(before)
        # Each rotation misses the group that was just displaced.
        assert delta["group_reload"] >= 3
        assert delta["pid.replace"] >= 3

    def test_file_large_enough_stops_reloading(self):
        kernel = make_kernel(group_capacity=4)
        machine = Machine(kernel)
        domain = kernel.create_domain("app")
        segments = [kernel.create_segment(f"s{i}", 2) for i in range(3)]
        for segment in segments:
            kernel.attach(domain, segment, Rights.RW)
        for segment in segments:  # one warm pass
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        before = kernel.stats.snapshot()
        for _ in range(3):
            for segment in segments:
                machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        delta = kernel.stats.delta(before)
        assert delta["group_reload"] == 0
        assert delta["pid.replace"] == 0

    def test_domain_switch_purges_the_file_and_reloads_on_return(self):
        """§4.1.4: a switch clears every PID register, so returning to a
        domain traps to reload even a previously resident group."""
        kernel = make_kernel()
        machine = Machine(kernel)
        app = kernel.create_domain("app")
        other = kernel.create_domain("other")
        shared = kernel.create_segment("shared", 2)
        kernel.attach(app, shared, Rights.RW)
        kernel.attach(other, shared, Rights.READ)
        vaddr = kernel.params.vaddr(shared.base_vpn)

        machine.read(app, vaddr)  # group resident for app
        before = kernel.stats.snapshot()
        machine.read(app, vaddr)  # still resident: no reload
        assert kernel.stats.delta(before)["group_reload"] == 0

        machine.read(other, vaddr)  # switch purged, other reloads
        before = kernel.stats.snapshot()
        machine.read(app, vaddr)  # switch back: trap-and-reload again
        delta = kernel.stats.delta(before)
        assert delta["group_reload"] == 1
        assert delta["domain_switch"] == 1


class TestWriteDisableBit:
    def test_read_only_attachment_sets_the_d_bit(self):
        kernel = make_kernel()
        machine = Machine(kernel)
        reader = kernel.create_domain("reader")
        data = kernel.create_segment("data", 2)
        kernel.attach(reader, data, Rights.READ)
        vaddr = kernel.params.vaddr(data.base_vpn)

        assert not machine.read(reader, vaddr).faulted
        entry = kernel.system.groups.find(data.aid)
        assert entry is not None and entry.write_disable
        with pytest.raises(SegmentationViolation):
            machine.write(reader, vaddr)

    def test_d_bit_masks_writes_even_when_page_rights_allow_them(self):
        """The mask is per-domain: the page's group rights stay RW for a
        writer domain while the D bit blocks the read-only domain."""
        kernel = make_kernel()
        machine = Machine(kernel)
        writer = kernel.create_domain("writer")
        reader = kernel.create_domain("reader")
        data = kernel.create_segment("data", 2, group_rights=Rights.RW)
        kernel.attach(writer, data, Rights.RW)
        kernel.attach(reader, data, Rights.READ)
        vaddr = kernel.params.vaddr(data.base_vpn)

        assert not machine.write(writer, vaddr).faulted
        with pytest.raises(SegmentationViolation):
            machine.write(reader, vaddr)
        # The group rights themselves were never narrowed.
        assert kernel.group_table.rights_of(data.base_vpn) == Rights.RW

    def test_set_segment_rights_regrant_flips_the_d_bit_in_place(self):
        kernel = make_kernel()
        machine = Machine(kernel)
        app = kernel.create_domain("app")
        data = kernel.create_segment("data", 2)
        kernel.attach(app, data, Rights.READ)
        vaddr = kernel.params.vaddr(data.base_vpn)
        machine.read(app, vaddr)
        with pytest.raises(SegmentationViolation):
            machine.write(app, vaddr)

        kernel.set_segment_rights(app, data, Rights.RW)
        entry = kernel.system.groups.find(data.aid)
        assert entry is not None and not entry.write_disable
        assert not machine.write(app, vaddr).faulted

        kernel.set_segment_rights(app, data, Rights.READ)
        with pytest.raises(SegmentationViolation):
            machine.write(app, vaddr)


class TestAblationEquivalence:
    def test_outcomes_match_the_cache_holder(self):
        """Swapping the holder changes the *cost*, never the *verdict*:
        both configurations allow and deny exactly the same references."""

        def outcomes(kernel: Kernel) -> list[str]:
            machine = Machine(kernel)
            app = kernel.create_domain("app")
            other = kernel.create_domain("other")
            segments = [kernel.create_segment(f"s{i}", 2) for i in range(3)]
            for segment in segments:
                kernel.attach(app, segment, Rights.RW)
            kernel.attach(other, segments[0], Rights.READ)
            log = []
            for domain in (app, other, app):
                for segment in segments:
                    for vpn in segment.vpns():
                        for method in (machine.read, machine.write):
                            try:
                                method(domain, kernel.params.vaddr(vpn))
                                log.append("ok")
                            except SegmentationViolation:
                                log.append("denied")
            return log

        registers = make_kernel()
        cache = Kernel(
            "pagegroup", n_frames=64,
            system_options={"group_holder": "cache", "group_capacity": 2},
        )
        assert isinstance(cache.system.groups, PageGroupCache)
        assert outcomes(registers) == outcomes(cache)
        assert registers.stats["pid.write"] > 0
        assert cache.stats["pid.write"] == 0
