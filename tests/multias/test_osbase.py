"""Tests for the multi-address-space baseline: synonyms and homonyms
exist there (and nowhere in a SASOS) — Section 2.2."""

from __future__ import annotations

import pytest

from repro.core.rights import AccessType, Rights
from repro.multias.osbase import AddressSpaceError, MultiASOS


class TestProcessesAndMappings:
    def test_private_mappings_isolated(self):
        os = MultiASOS()
        a = os.create_process("a")
        b = os.create_process("b")
        os.map_private(a, 0x10)
        with pytest.raises(AddressSpaceError):
            os.access(b, 0x10 << 12)

    def test_double_map_rejected(self):
        os = MultiASOS()
        a = os.create_process("a")
        os.map_private(a, 0x10)
        with pytest.raises(AddressSpaceError):
            os.map_private(a, 0x10)

    def test_shared_map_requires_live_frame(self):
        os = MultiASOS()
        a = os.create_process("a")
        with pytest.raises(AddressSpaceError):
            os.map_shared(a, 0x10, pfn=999)

    def test_rights_enforced(self):
        os = MultiASOS()
        a = os.create_process("a")
        os.map_private(a, 0x10, rights=Rights.READ)
        os.access(a, 0x10 << 12)
        with pytest.raises(AddressSpaceError):
            os.access(a, 0x10 << 12, AccessType.WRITE)


class TestSynonyms:
    def _shared_two_ways(self, os):
        """The same frame mapped at different VAs in two processes."""
        a = os.create_process("a")
        b = os.create_process("b")
        pfn = os.map_private(a, 0x10)
        os.map_shared(b, 0x11, pfn)  # different VA -> different cache set
        return a, b, pfn

    def test_synonym_duplicates_line_in_vivt_cache(self):
        os = MultiASOS()
        a, b, pfn = self._shared_two_ways(os)
        os.access(a, 0x10 << 12, AccessType.WRITE)
        os.access(b, 0x11 << 12)
        assert os.synonym_hazards >= 1
        assert os.cache.resident_copies((pfn << 12) >> 5) == 2

    def test_synonym_hazard_is_a_write_coherence_bug(self):
        """Both copies resident, one dirty: a write through one virtual
        name is invisible through the other."""
        os = MultiASOS()
        a, b, _ = self._shared_two_ways(os)
        os.access(a, 0x10 << 12, AccessType.WRITE)
        result = os.access(b, 0x11 << 12)
        assert result.synonym_hazard


class TestHomonyms:
    def _same_va_two_frames(self, os):
        """VA 0x10 means different physical pages in two processes."""
        a = os.create_process("a")
        b = os.create_process("b")
        os.map_private(a, 0x10)
        os.map_private(b, 0x10)
        return a, b

    def test_homonym_wrong_hit_detected(self):
        os = MultiASOS()
        a, b = self._same_va_two_frames(os)
        os.access(a, 0x10 << 12)
        result = os.access(b, 0x10 << 12)
        assert result.homonym_hazard
        assert os.homonym_hazards == 1

    def test_flush_on_switch_avoids_homonyms(self):
        """The i860-style fix: flush the cache on each switch."""
        os = MultiASOS(flush_on_switch=True)
        a, b = self._same_va_two_frames(os)
        os.access(a, 0x10 << 12)
        result = os.access(b, 0x10 << 12)
        assert not result.homonym_hazard
        assert os.stats["dcache.purge"] >= 1

    def test_flush_on_switch_destroys_useful_state(self):
        """...at the cost of cold-starting the cache (§2.2)."""
        os = MultiASOS(flush_on_switch=True)
        a, b = self._same_va_two_frames(os)
        os.access(a, 0x10 << 12)
        os.access(b, 0x10 << 12)
        result = os.access(a, 0x10 << 12)  # would have hit without flushes
        assert not result.hit

    def test_asid_tags_avoid_homonyms_without_flushing(self):
        os = MultiASOS(asid_tagged_cache=True, cache_ways=2)
        a, b = self._same_va_two_frames(os)
        os.access(a, 0x10 << 12)
        result = os.access(b, 0x10 << 12)
        assert not result.homonym_hazard
        # And process a's line survives:
        assert os.access(a, 0x10 << 12).hit

    def test_asid_tags_reintroduce_synonym_for_shared_data(self):
        """Section 2.2: address extension 'introduces the synonym
        problem when different address spaces use the same virtual
        address to refer to the same location'."""
        os = MultiASOS(asid_tagged_cache=True, cache_ways=2)
        a = os.create_process("a")
        b = os.create_process("b")
        pfn = os.map_private(a, 0x10)
        os.map_shared(b, 0x10, pfn)  # same VA, same frame
        os.access(a, 0x10 << 12, AccessType.WRITE)
        result = os.access(b, 0x10 << 12)
        assert result.synonym_hazard  # two tagged copies of one line
