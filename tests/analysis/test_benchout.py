"""Tests for the benchmark report registry."""

from __future__ import annotations

import pytest

from repro.analysis import benchout


@pytest.fixture(autouse=True)
def clean_registry():
    benchout.clear()
    yield
    benchout.clear()


class TestRegistry:
    def test_record_and_retrieve_in_order(self):
        benchout.record("first", "body one")
        benchout.record("second", "body two")
        assert benchout.all_reports() == [
            ("first", "body one"),
            ("second", "body two"),
        ]

    def test_all_reports_returns_copy(self):
        benchout.record("a", "b")
        reports = benchout.all_reports()
        reports.append(("x", "y"))
        assert len(benchout.all_reports()) == 1

    def test_clear(self):
        benchout.record("a", "b")
        benchout.clear()
        assert benchout.all_reports() == []
