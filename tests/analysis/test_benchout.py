"""Tests for the benchmark report registry."""

from __future__ import annotations

import pytest

from repro.analysis import benchout


@pytest.fixture(autouse=True)
def clean_registry():
    benchout.clear()
    yield
    benchout.clear()


class TestRegistry:
    def test_record_and_retrieve_in_order(self):
        benchout.record("first", "body one")
        benchout.record("second", "body two")
        assert benchout.all_reports() == [
            ("first", "body one"),
            ("second", "body two"),
        ]

    def test_all_reports_returns_copy(self):
        benchout.record("a", "b")
        reports = benchout.all_reports()
        reports.append(("x", "y"))
        assert len(benchout.all_reports()) == 1

    def test_clear(self):
        benchout.record("a", "b")
        benchout.clear()
        assert benchout.all_reports() == []


class TestStructuredReports:
    def _report(self, model="plb", cycles=100):
        from repro.obs.export import RunReport

        return RunReport(
            title="t", model=model, counters={"refs": 1},
            cycles_total=cycles, cycles_breakdown={},
        )

    def test_single_report_attaches(self):
        benchout.record("a", "b", reports=self._report())
        assert [r.model for r in benchout.run_reports()] == ["plb"]

    def test_report_lists_flatten_in_order(self):
        benchout.record("a", "b", reports=[self._report("plb"),
                                           self._report("pagegroup")])
        benchout.record("c", "d")
        benchout.record("e", "f", reports=[self._report("conventional")])
        assert [r.model for r in benchout.run_reports()] == [
            "plb", "pagegroup", "conventional",
        ]

    def test_write_run_reports_json(self, tmp_path):
        import json

        benchout.record("a", "b", reports=self._report(cycles=7))
        path = tmp_path / "reports.json"
        assert benchout.write_run_reports(str(path)) == 1
        data = json.loads(path.read_text())
        assert data["reports"][0]["cycles_total"] == 7


class TestRegressionChecker:
    def test_check_flags_growth_and_missing_cells(self):
        import importlib.util
        from pathlib import Path

        script = (Path(__file__).resolve().parents[2]
                  / "tools" / "check_bench_regression.py")
        spec = importlib.util.spec_from_file_location("check_bench", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        baseline = {"gc": {"plb": 1000, "pagegroup": 2000},
                    "txn": {"plb": 500}}
        current = {"gc": {"plb": 1101, "pagegroup": 2100}}  # +10.1%, +5%
        failures = module.check(current, baseline)
        assert len(failures) == 2
        assert any("gc / plb" in line and "+10.1%" in line for line in failures)
        assert any("txn / plb" in line and "missing" in line for line in failures)
        # Exactly at threshold or improving never fails.
        assert module.check(
            {"gc": {"plb": 1100, "pagegroup": 1}, "txn": {"plb": 500}}, baseline
        ) == []
