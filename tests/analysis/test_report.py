"""Tests for the ASCII report renderer."""

from __future__ import annotations

import pytest

from repro.analysis.report import comparison_table, format_table, ratio
from repro.sim.stats import Stats


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equal width

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_numbers_right_aligned_strings_left(self):
        text = format_table(["name", "n"], [["x", 5], ["longer", 123]])
        rows = text.splitlines()[2:]
        assert rows[0].startswith("x ")
        assert rows[0].rstrip().endswith("5")


class TestComparisonTable:
    def test_models_as_columns(self):
        stats = {
            "plb": Stats({"plb.hit": 10}),
            "pagegroup": Stats({"pgtlb.hit": 7}),
        }
        text = comparison_table(
            stats, [("PLB hits", "plb.hit"), ("PG-TLB hits", "pgtlb.hit")]
        )
        assert "plb" in text.splitlines()[0]
        assert "pagegroup" in text.splitlines()[0]
        assert "10" in text and "7" in text

    def test_wildcard_counter_sums_prefix(self):
        stats = {"m": Stats({"plb.hit": 2, "plb.miss": 3})}
        text = comparison_table(stats, [("all plb", "plb.*")])
        assert "5" in text


class TestRatio:
    def test_normal(self):
        assert ratio(10, 4) == 2.5

    def test_zero_denominator(self):
        assert ratio(10, 0) == 0.0
