"""Tests for the Figure 1 / Figure 2 reproductions."""

from __future__ import annotations

from repro.analysis.figures import (
    figure1_fields,
    figure2_check_matrix,
    render_figure1,
    render_figure2,
)
from repro.core.params import MachineParams


class TestFigure1:
    def test_paper_field_widths(self):
        """Figure 1's caption: 52 / 16 / 3 bits for 64-bit VAs, 4K pages."""
        fields = figure1_fields()
        assert fields.vpn_bits == 52
        assert fields.pd_id_bits == 16
        assert fields.rights_bits == 3
        assert fields.entry_bits == 71

    def test_widths_track_parameters(self):
        fields = figure1_fields(MachineParams(va_bits=48, page_bits=13))
        assert fields.vpn_bits == 35

    def test_render_mentions_widths(self):
        text = render_figure1()
        assert "52 bits" in text
        assert "16 bits" in text
        assert "3 bits" in text
        assert "PLB" in text


class TestFigure2:
    def test_every_case_matches_the_figure(self):
        results = figure2_check_matrix()
        assert len(results) >= 8
        assert all(entry["matches"] for entry in results)

    def test_covers_both_outcomes(self):
        results = figure2_check_matrix()
        assert any(entry["allowed"] for entry in results)
        assert any(not entry["allowed"] for entry in results)
        assert any(not entry["group_hit"] for entry in results)

    def test_render_is_a_table(self):
        text = render_figure2()
        assert "scenario" in text
        assert "MISMATCH" not in text
