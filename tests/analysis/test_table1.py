"""Tests for the Table 1 regeneration harness."""

from __future__ import annotations

import pytest

from repro.analysis.table1 import (
    run_attach_detach,
    run_checkpoint,
    run_dsm,
    run_gc,
    run_rpc,
    run_txn,
)
from repro.workloads.attach import AttachConfig
from repro.workloads.checkpoint import CheckpointConfig
from repro.workloads.gc import GCConfig
from repro.workloads.rpc import RPCConfig
from repro.workloads.txn import TxnConfig

SMALL_MODELS = ("plb", "pagegroup")


class TestMatrixRuns:
    def test_attach_detach_has_all_models(self):
        result = run_attach_detach(
            AttachConfig(segments=3, pages_per_segment=2), models=SMALL_MODELS
        )
        assert set(result.stats_by_model) == set(SMALL_MODELS)
        assert all(s["attaches"] == 3 for s in result.summary_by_model.values())

    def test_render_contains_counters_and_cycles(self):
        result = run_rpc(RPCConfig(calls=5), models=SMALL_MODELS)
        text = result.render()
        assert "PD-ID register writes" in text
        assert "weighted cycles" in text

    def test_cycles_positive(self):
        result = run_gc(
            GCConfig(heap_pages=8, collections=1, mutator_refs_per_cycle=100),
            models=SMALL_MODELS,
        )
        cycles = result.cycles()
        assert all(value > 0 for value in cycles.values())

    def test_workload_summaries_identical_across_models(self):
        """Same inputs: the application-level work must match."""
        result = run_checkpoint(
            CheckpointConfig(segment_pages=8, checkpoints=1, refs_per_checkpoint=80),
            models=SMALL_MODELS,
        )
        summaries = list(result.summary_by_model.values())
        assert summaries[0] == summaries[1]

    def test_dsm_patterns(self):
        result = run_dsm(models=("plb",), nodes=2, pages=8, rounds=1,
                         refs_per_round=50)
        assert result.summary_by_model["plb"]["get_writable"] > 0
        with pytest.raises(ValueError):
            run_dsm(models=("plb",), pattern="bogus")

    def test_txn_strategy_in_title(self):
        result = run_txn(
            TxnConfig(db_pages=8, transactions=2, touches_per_txn=6,
                      lock_strategy="page"),
            models=("pagegroup",),
        )
        assert "page" in result.title


class TestPaperDirection:
    """The qualitative directions Table 1 predicts, checked end-to-end."""

    def test_detach_sweeps_only_on_plb(self):
        result = run_attach_detach(
            AttachConfig(segments=4, pages_per_segment=4),
            models=("plb", "pagegroup"),
        )
        plb = result.stats_by_model["plb"]
        pg = result.stats_by_model["pagegroup"]
        assert plb["plb.sweep_inspected"] > 0
        assert pg.total("plb") == 0

    def test_rpc_switch_cost_direction(self):
        result = run_rpc(RPCConfig(calls=15), models=("plb", "pagegroup"))
        plb = result.stats_by_model["plb"]
        pg = result.stats_by_model["pagegroup"]
        assert plb["group_reload"] == 0
        assert pg["group_reload"] > 0
