"""§4.1.3: remote consistency costs must rank PLB <= page-group <= conventional."""

from __future__ import annotations

import pytest

from repro.analysis.consistency import (
    VERB_ALL_DOMAINS,
    VERB_UNMAP,
    VERBS,
    consistency_table,
    measure_all,
    measure_model,
)
from repro.os.kernel import MODELS


class TestOrdering:
    def test_rights_change_messages_follow_the_paper_ordering(self):
        """The acceptance bar: invalidations per rights change on a shared
        page are ordered PLB <= page-group <= conventional."""
        results = measure_all(n_cpus=3, n_domains=3)
        plb = results["plb"].rights_change_msgs
        pagegroup = results["pagegroup"].rights_change_msgs
        conventional = results["conventional"].rights_change_msgs
        assert plb <= pagegroup <= conventional
        assert conventional > plb  # strictly worse with >1 sharing domain

    def test_message_counts_match_the_analytic_model(self):
        """PLB/page-group send one IPI per remote CPU; conventional one
        per sharing domain per remote CPU (§4.1.3)."""
        n_cpus, n_domains = 3, 4
        results = measure_all(n_cpus=n_cpus, n_domains=n_domains)
        remotes = n_cpus - 1
        assert results["plb"].rights_change_msgs == remotes
        assert results["pagegroup"].rights_change_msgs == remotes
        assert results["conventional"].rights_change_msgs == n_domains * remotes

    def test_pagegroup_touches_one_entry_per_cpu_on_shared_pages(self):
        """'The change is easily made in the single TLB entry' (§4.1.2):
        the AID-tagged entry is shared by every domain, so remote entry
        updates don't scale with the sharing set."""
        n_cpus, n_domains = 3, 4
        results = measure_all(n_cpus=n_cpus, n_domains=n_domains)
        remotes = n_cpus - 1
        assert results["pagegroup"].costs[VERB_ALL_DOMAINS].entries == remotes
        # PLB and conventional both hold one entry per sharing domain.
        assert results["plb"].costs[VERB_ALL_DOMAINS].entries == n_domains * remotes
        assert (
            results["conventional"].costs[VERB_ALL_DOMAINS].entries
            == n_domains * remotes
        )

    def test_unmap_is_a_translation_shootdown_on_every_model(self):
        for model, result in measure_all(n_cpus=3, n_domains=2).items():
            assert result.costs[VERB_UNMAP].msgs == 2, model
            assert result.costs[VERB_UNMAP].entries >= 2, model


class TestScenario:
    @pytest.mark.parametrize("model", MODELS)
    def test_single_cpu_generates_no_remote_traffic(self, model):
        result = measure_model(model, n_cpus=1, n_domains=3)
        for verb in VERBS:
            assert result.costs[verb].msgs == 0
            assert result.costs[verb].entries == 0

    def test_too_few_pages_is_an_error(self):
        with pytest.raises(ValueError):
            measure_model("plb", pages=3)


class TestRendering:
    def test_table_names_every_verb_and_model(self):
        text = consistency_table(n_cpus=3, n_domains=3)
        for verb in VERBS:
            assert verb in text
        for model in MODELS:
            assert model in text
        assert "paper ordering" in text
