"""Tests for the cross-workload summary module."""

from __future__ import annotations

import dataclasses

from repro.analysis.summary import SummaryRow, render_summary, run_summary
from repro.core.costs import CycleCosts


class TestRender:
    def rows(self):
        return [
            SummaryRow("alpha", {"plb": 100, "pagegroup": 120}),
            SummaryRow("beta", {"plb": 200, "pagegroup": 150}),
        ]

    def test_ratios_and_geomean(self):
        text = render_summary(self.rows())
        assert "1.20x" in text
        assert "0.75x" in text
        # geomean(1.2, 0.75) = sqrt(0.9) ≈ 0.95
        assert "pagegroup/plb = 0.95x" in text

    def test_workload_names_present(self):
        text = render_summary(self.rows())
        assert "alpha" in text and "beta" in text


class TestRun:
    def test_runs_all_workloads_two_models(self):
        rows = run_summary(models=("plb", "pagegroup"))
        assert len(rows) == 8
        for row in rows:
            assert set(row.cycles) == {"plb", "pagegroup"}
            assert all(value > 0 for value in row.cycles.values())

    def test_custom_costs_change_totals(self):
        cheap = CycleCosts(kernel_trap=1, disk_io=1)
        rows_default = run_summary(models=("plb",))
        rows_cheap = run_summary(models=("plb",), costs=cheap)
        defaults = {row.workload: row.cycles["plb"] for row in rows_default}
        cheaps = {row.workload: row.cycles["plb"] for row in rows_cheap}
        assert all(cheaps[name] < defaults[name] for name in defaults)
