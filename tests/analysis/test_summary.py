"""Tests for the cross-workload summary module."""

from __future__ import annotations

import dataclasses

from repro.analysis.summary import (
    SummaryRow,
    recovery_counter_lines,
    render_summary,
    run_summary,
)
from repro.core.costs import CycleCosts
from repro.sim.stats import Stats


class TestRender:
    def rows(self):
        return [
            SummaryRow("alpha", {"plb": 100, "pagegroup": 120}),
            SummaryRow("beta", {"plb": 200, "pagegroup": 150}),
        ]

    def test_ratios_and_geomean(self):
        text = render_summary(self.rows())
        assert "1.20x" in text
        assert "0.75x" in text
        # geomean(1.2, 0.75) = sqrt(0.9) ≈ 0.95
        assert "pagegroup/plb = 0.95x" in text

    def test_workload_names_present(self):
        text = render_summary(self.rows())
        assert "alpha" in text and "beta" in text

    def test_fault_free_rows_render_without_recovery_footer(self):
        assert "fault recovery" not in render_summary(self.rows())

    def test_recovery_totals_render_when_nonzero(self):
        rows = self.rows()
        rows[0] = dataclasses.replace(
            rows[0],
            recovery={"plb": {"disk.retries": 2}, "pagegroup": {}},
        )
        rows[1] = dataclasses.replace(
            rows[1], recovery={"plb": {"disk.retries": 1, "scrub.repairs": 3}}
        )
        text = render_summary(rows)
        assert "fault recovery:" in text
        assert "disk.retries=3" in text  # summed across workloads
        assert "scrub.repairs=3" in text


class TestRecoveryCounterLines:
    def test_all_zero_means_no_lines_at_all(self):
        # Fault-free runs must keep workload/profile output
        # byte-identical to the seed.
        assert recovery_counter_lines({"plb": Stats()}) == []

    def test_only_nonzero_counters_named(self):
        stats = Stats()
        stats.inc("faults.injected", 4)
        stats.inc("faults.recovered", 3)
        lines = recovery_counter_lines({"plb": stats, "pagegroup": Stats()})
        assert lines[0] == "fault recovery:"
        assert "faults.injected=4" in lines[1]
        assert "faults.recovered=3" in lines[1]
        assert "disk.retries" not in lines[1]


class TestRun:
    def test_runs_all_workloads_two_models(self):
        rows = run_summary(models=("plb", "pagegroup"))
        assert len(rows) == 8
        for row in rows:
            assert set(row.cycles) == {"plb", "pagegroup"}
            assert all(value > 0 for value in row.cycles.values())

    def test_custom_costs_change_totals(self):
        cheap = CycleCosts(kernel_trap=1, disk_io=1)
        rows_default = run_summary(models=("plb",))
        rows_cheap = run_summary(models=("plb",), costs=cheap)
        defaults = {row.workload: row.cycles["plb"] for row in rows_default}
        cheaps = {row.workload: row.cycles["plb"] for row in rows_cheap}
        assert all(cheaps[name] < defaults[name] for name in defaults)
