"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, cmd_entry_sizes, cmd_replay, cmd_workload, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_models_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--models", "bogus"])

    def test_models_parsing(self):
        args = build_parser().parse_args(["table1", "--models", "plb,pagegroup"])
        assert args.models == ("plb", "pagegroup")


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "52 bits" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "group 0" in out

    def test_entry_sizes(self, capsys):
        assert main(["entry-sizes"]) == 0
        out = capsys.readouterr().out
        assert "about 25%" in out

    def test_workload_rpc(self, capsys):
        assert main(["workload", "rpc", "--models", "plb"]) == 0
        out = capsys.readouterr().out
        assert "PD-ID register writes" in out
        assert "calls=" in out

    def test_workload_dsm(self, capsys):
        assert main(["workload", "dsm", "--models", "plb"]) == 0
        out = capsys.readouterr().out
        assert "Distributed VM" in out

    def test_workload_fileserver(self, capsys):
        assert main(["workload", "fileserver", "--models", "plb"]) == 0
        out = capsys.readouterr().out
        assert "File server" in out
        assert "requests=" in out

    def test_summary(self, capsys):
        assert main(["summary", "--models", "plb,pagegroup"]) == 0
        out = capsys.readouterr().out
        assert "geometric mean" in out
        assert "pagegroup/plb" in out

    def test_all_emits_every_artifact(self, capsys):
        assert main(["all", "--models", "plb,pagegroup"]) == 0
        out = capsys.readouterr().out
        for marker in ("Figure 1", "Figure 2", "Entry sizes",
                       "Table 1 (measured)", "Cross-workload summary"):
            assert marker in out


class TestReplay:
    def test_replay_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "t.trace"
        trace.write_text(
            "R 1 0x100000 r\nR 1 0x100040 w\nS 1\nR 2 0x101000 r\n"
        )
        assert main(["replay", str(trace), "--model", "pagegroup"]) == 0
        out = capsys.readouterr().out
        assert "weighted cycles" in out
        assert "refs" in out

    def test_replay_empty_trace(self, tmp_path):
        trace = tmp_path / "empty.trace"
        trace.write_text("# nothing\n")
        assert "no references" in cmd_replay(str(trace), "plb", 4)
