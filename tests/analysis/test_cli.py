"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, cmd_entry_sizes, cmd_replay, cmd_workload, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_models_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--models", "bogus"])

    def test_models_parsing(self):
        args = build_parser().parse_args(["table1", "--models", "plb,pagegroup"])
        assert args.models == ("plb", "pagegroup")


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "52 bits" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "MISMATCH" not in out
        assert "group 0" in out

    def test_entry_sizes(self, capsys):
        assert main(["entry-sizes"]) == 0
        out = capsys.readouterr().out
        assert "about 25%" in out

    def test_workload_rpc(self, capsys):
        assert main(["workload", "rpc", "--models", "plb"]) == 0
        out = capsys.readouterr().out
        assert "PD-ID register writes" in out
        assert "calls=" in out

    def test_workload_dsm(self, capsys):
        assert main(["workload", "dsm", "--models", "plb"]) == 0
        out = capsys.readouterr().out
        assert "Distributed VM" in out

    def test_workload_fileserver(self, capsys):
        assert main(["workload", "fileserver", "--models", "plb"]) == 0
        out = capsys.readouterr().out
        assert "File server" in out
        assert "requests=" in out

    def test_summary(self, capsys):
        assert main(["summary", "--models", "plb,pagegroup"]) == 0
        out = capsys.readouterr().out
        assert "geometric mean" in out
        assert "pagegroup/plb" in out

    def test_all_emits_every_artifact(self, capsys):
        assert main(["all", "--models", "plb,pagegroup"]) == 0
        out = capsys.readouterr().out
        for marker in ("Figure 1", "Figure 2", "Entry sizes",
                       "Table 1 (measured)", "Cross-workload summary"):
            assert marker in out


class TestParallelismValidation:
    """One validation path for --jobs (worker processes) and --cpus
    (simulated CPUs): consistent, explicit error messages."""

    def test_workload_jobs_below_one(self, capsys):
        assert main(["workload", "rpc", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_workload_jobs_with_single_model_is_explicit(self, capsys):
        """--jobs fans out across models; with one model it used to run
        silently sequentially — now it is a contradiction we reject."""
        assert main(["workload", "rpc", "--models", "plb", "--jobs", "2"]) == 2
        err = capsys.readouterr().err
        assert "parallelizes across models" in err
        assert "--models plb,pagegroup" in err

    def test_bench_jobs_below_one(self, capsys):
        assert main(["bench", "--models", "plb", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_smp_cpus_below_one(self, capsys):
        assert main(["smp", "--cpus", "0"]) == 2
        assert "--cpus must be >= 1" in capsys.readouterr().err

    def test_smp_domains_below_one(self, capsys):
        assert main(["smp", "--cpus", "2", "--domains", "0"]) == 2
        assert "--domains must be >= 1" in capsys.readouterr().err


class TestSMPCommand:
    def test_prints_the_consistency_table(self, capsys):
        assert main(["smp", "--cpus", "2", "--domains", "2",
                     "--models", "plb,conventional"]) == 0
        out = capsys.readouterr().out
        assert "§4.1.3 consistency" in out
        assert "rights change (all domains, one page)" in out
        assert "paper ordering: plb <= pagegroup <= conventional" in out

    def test_chaos_smoke_exits_zero_on_recovery(self, capsys):
        assert main(["smp", "--cpus", "2", "--models", "plb",
                     "--plan", "shootdown", "--ops", "40", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "smp chaos fuzz model=plb seed=0: OK" in out
        assert "cpus=2" in out

    def test_too_few_pages_is_a_clean_error(self, capsys):
        assert main(["smp", "--cpus", "2", "--pages", "2"]) == 2
        assert "at least 4 pages" in capsys.readouterr().err


class TestErrors:
    def test_unknown_workload_exits_cleanly(self, capsys):
        assert main(["workload", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload 'bogus'" in err
        assert "gc" in err  # the message lists the valid names

    def test_unknown_trace_workload(self, capsys):
        assert main(["trace", "bogus", "--out", "/tmp/never.json"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_profile_model(self, capsys):
        assert main(["profile", "gc", "--model", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown model 'bogus'" in err
        assert "plb" in err

    def test_dsm_cannot_be_traced(self, capsys):
        assert main(["trace", "dsm", "--out", "/tmp/never.json"]) == 2
        assert "dsm" in capsys.readouterr().err


class TestTrace:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "gc", "--model", "plb", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert events and events[0]["name"] == "run.gc"
        assert "traced gc on plb" in capsys.readouterr().out

    def test_trace_jsonl_format(self, tmp_path):
        import json

        out = tmp_path / "spans.jsonl"
        assert main(["trace", "rpc", "--model", "pagegroup", "--out", str(out),
                     "--format", "jsonl", "--sample", "10"]) == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0]["name"] == "run.rpc"
        assert lines[0]["parent"] is None

    def test_trace_report_format(self, tmp_path):
        from repro.obs.export import load_run_report

        out = tmp_path / "report.json"
        assert main(["trace", "attach", "--model", "conventional",
                     "--out", str(out), "--format", "report"]) == 0
        report = load_run_report(str(out))
        assert report.model == "conventional"
        assert report.cycles_total == sum(report.cycles_breakdown.values())
        assert report.spans


class TestProfile:
    def test_profile_attributed_total_matches_delta(self, capsys):
        assert main(["profile", "txn", "--model", "pagegroup"]) == 0
        out = capsys.readouterr().out
        assert "Hotspots: txn on pagegroup" in out
        # The two footer totals must agree exactly (the acceptance
        # identity: root-span attribution == cycles_for over the delta).
        attributed = [line for line in out.splitlines()
                      if line.startswith("attributed cycles")]
        weighted = [line for line in out.splitlines()
                    if line.startswith("weighted cycles")]
        assert attributed and weighted
        assert attributed[0].split(":")[1].strip() == \
            weighted[0].split(":")[1].strip()

    def test_profile_top_limits_rows(self, capsys):
        assert main(["profile", "gc", "--model", "plb", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "top 2 of" in out


class TestReplay:
    def test_replay_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "t.trace"
        trace.write_text(
            "R 1 0x100000 r\nR 1 0x100040 w\nS 1\nR 2 0x101000 r\n"
        )
        assert main(["replay", str(trace), "--model", "pagegroup"]) == 0
        out = capsys.readouterr().out
        assert "weighted cycles" in out
        assert "refs" in out

    def test_replay_empty_trace(self, tmp_path):
        trace = tmp_path / "empty.trace"
        trace.write_text("# nothing\n")
        assert "no references" in cmd_replay(str(trace), "plb", 4)


class TestChaosCommand:
    def test_recoverable_plan_exits_zero(self, capsys):
        assert main(["chaos", "fuzz", "--model", "plb", "--plan", "mixed",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "chaos fuzz seed=0: OK" in out
        assert "faults.injected=" in out

    def test_no_plan_exits_zero(self, capsys):
        assert main(["chaos", "fuzz", "--model", "pagegroup", "--plan", "none",
                     "--seed", "0"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_unrecoverable_plan_exits_one_with_dump(self, capsys):
        import json

        assert main(["chaos", "fuzz", "--model", "plb",
                     "--plan", "unrecoverable", "--seed", "1"]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "replayable repro dump:" in captured.out
        dump = json.loads(captured.out.split("replayable repro dump:\n", 1)[1])
        assert dump["plan"]["name"] == "unrecoverable"
        assert dump["divergence"]["model"] == "plb"

    def test_plan_file_replays_dump(self, tmp_path, capsys):
        import json

        main(["chaos", "fuzz", "--model", "plb",
              "--plan", "unrecoverable", "--seed", "1"])
        out = capsys.readouterr().out
        dump_path = tmp_path / "repro.json"
        dump_path.write_text(out.split("replayable repro dump:\n", 1)[1])
        assert main(["chaos", "fuzz", "--model", "plb",
                     "--plan", str(dump_path), "--seed", "1"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unknown_plan_exits_cleanly(self, capsys):
        assert main(["chaos", "fuzz", "--plan", "gremlins", "--seed", "0"]) == 2
        assert "unknown --plan" in capsys.readouterr().err

    def test_unknown_scenario_exits_cleanly(self, capsys):
        assert main(["chaos", "bogus", "--seed", "0"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestCrashRecoverCommand:
    def test_single_model_sweep_exits_zero(self, capsys):
        assert main(["crash-recover", "--models", "plb"]) == 0
        out = capsys.readouterr().out
        assert "crash-recover: OK" in out
        assert "crash points" in out
