"""Unit and property tests for the generic associative cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.assoc import AssocCache
from repro.sim.stats import Stats


def make(entries=4, ways=None, **kw) -> AssocCache:
    return AssocCache(entries, ways, name="t", **kw)


class TestConstruction:
    def test_defaults_to_fully_associative(self):
        cache = make(8)
        assert cache.ways == 8
        assert cache.n_sets == 1

    def test_set_associative_shape(self):
        cache = AssocCache(8, 2, set_of=lambda k: k)
        assert cache.n_sets == 4

    @pytest.mark.parametrize("entries,ways", [(0, 1), (4, 0), (7, 2), (-1, 1)])
    def test_rejects_bad_geometry(self, entries, ways):
        with pytest.raises(ValueError):
            AssocCache(entries, ways)


class TestLookupFill:
    def test_miss_then_hit(self):
        cache = make()
        assert cache.lookup("k") is None
        cache.fill("k", 1)
        assert cache.lookup("k") == 1
        assert cache.stats["t.miss"] == 1
        assert cache.stats["t.hit"] == 1

    def test_fill_overwrites_in_place(self):
        cache = make()
        cache.fill("k", 1)
        cache.fill("k", 2)
        assert cache.lookup("k") == 2
        assert len(cache) == 1

    def test_peek_does_not_touch_lru_or_stats(self):
        cache = make(entries=2)
        cache.fill("a", 1)
        cache.fill("b", 2)
        assert cache.peek("a") == 1  # no LRU promotion
        cache.fill("c", 3)  # evicts LRU
        assert "a" not in cache  # peek did not protect it
        assert cache.stats["t.hit"] == 0

    def test_update_resident(self):
        cache = make()
        cache.fill("k", 1)
        assert cache.update("k", 9)
        assert cache.peek("k") == 9
        assert cache.stats["t.update"] == 1

    def test_update_missing_returns_false(self):
        cache = make()
        assert not cache.update("k", 9)


class TestLRUReplacement:
    def test_evicts_least_recently_used(self):
        cache = make(entries=2)
        cache.fill("a", 1)
        cache.fill("b", 2)
        cache.lookup("a")  # promote a
        victim = cache.fill("c", 3)
        assert victim == "b"
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_eviction_counted(self):
        cache = make(entries=1)
        cache.fill("a", 1)
        cache.fill("b", 2)
        assert cache.stats["t.eviction"] == 1

    def test_set_isolation(self):
        cache = AssocCache(4, 2, set_of=lambda k: k)
        # Keys 0 and 2 map to set 0; keys 1 and 3 to set 1.
        cache.fill(0, "a")
        cache.fill(2, "b")
        cache.fill(1, "c")
        victim = cache.fill(4, "d")  # set 0 again; evicts LRU of set 0
        assert victim == 0
        assert 1 in cache  # other set untouched

    def test_occupancy(self):
        cache = make(entries=4)
        assert cache.occupancy == 0.0
        cache.fill("a", 1)
        assert cache.occupancy == 0.25


class TestInvalidation:
    def test_invalidate_exact(self):
        cache = make()
        cache.fill("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert "a" not in cache

    def test_sweep_counts_inspections_and_removals(self):
        cache = make(entries=8)
        for key in range(6):
            cache.fill(key, key)
        inspected, removed = cache.sweep(lambda k, v: k % 2 == 0)
        assert inspected == 6
        assert removed == 3
        assert cache.stats["t.sweep_inspected"] == 6
        assert cache.stats["t.sweep_removed"] == 3
        assert sorted(cache.keys()) == [1, 3, 5]

    def test_sweep_nothing_matching(self):
        cache = make()
        cache.fill("a", 1)
        inspected, removed = cache.sweep(lambda k, v: False)
        assert (inspected, removed) == (1, 0)
        assert "a" in cache

    def test_purge_removes_all(self):
        cache = make(entries=8)
        for key in range(5):
            cache.fill(key, key)
        assert cache.purge() == 5
        assert len(cache) == 0
        assert cache.stats["t.purge_removed"] == 5


class TestSharedStats:
    def test_external_stats_object(self):
        stats = Stats()
        cache = AssocCache(2, name="x", stats=stats, set_of=lambda k: k)
        cache.fill(1, 1)
        assert stats["x.fill"] == 1


class TestAssocProperties:
    @settings(max_examples=60)
    @given(
        keys=st.lists(st.integers(0, 30), min_size=1, max_size=120),
        entries=st.sampled_from([2, 4, 8]),
        ways=st.sampled_from([1, 2]),
    )
    def test_occupancy_never_exceeds_capacity(self, keys, entries, ways):
        if entries % ways:
            return
        cache = AssocCache(entries, ways, set_of=lambda k: k)
        for key in keys:
            cache.fill(key, key)
        assert len(cache) <= entries
        for entry_set in cache._sets:
            assert len(entry_set) <= ways

    @settings(max_examples=60)
    @given(keys=st.lists(st.integers(0, 10), min_size=1, max_size=60))
    def test_most_recent_fill_always_resident_fully_assoc(self, keys):
        cache = AssocCache(4, set_of=lambda k: k)
        for key in keys:
            cache.fill(key, key)
        assert keys[-1] in cache

    @settings(max_examples=60)
    @given(keys=st.lists(st.integers(0, 50), min_size=1, max_size=100))
    def test_hits_plus_misses_equals_lookups(self, keys):
        cache = AssocCache(8, name="c", set_of=lambda k: k)
        for key in keys:
            if cache.lookup(key) is None:
                cache.fill(key, key)
        assert cache.stats["c.hit"] + cache.stats["c.miss"] == len(keys)

    @settings(max_examples=40)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["fill", "lookup", "invalidate"]), st.integers(0, 12)),
            max_size=80,
        )
    )
    def test_resident_set_matches_model(self, ops):
        """The cache agrees with a brute-force LRU model."""
        cache = AssocCache(4, set_of=lambda k: k)
        model: list[int] = []  # LRU order, front = LRU
        for op, key in ops:
            if op == "fill":
                cache.fill(key, key)
                if key in model:
                    model.remove(key)
                elif len(model) >= 4:
                    model.pop(0)
                model.append(key)
            elif op == "lookup":
                found = cache.lookup(key)
                assert (found is not None) == (key in model)
                if key in model:
                    model.remove(key)
                    model.append(key)
            else:
                removed = cache.invalidate(key)
                assert removed == (key in model)
                if key in model:
                    model.remove(key)
        assert sorted(cache.keys()) == sorted(model)


class TestUpdateLRUNeutrality:
    """Regression: update() rewrites a value without counting as a use.

    A kernel rights-update walking the PLB must not refresh the entry's
    recency — the program did not reference it, and promoting it would
    let bookkeeping traffic distort replacement.
    """

    def test_updated_entry_still_evicted_first(self):
        cache = AssocCache(2, 2, set_of=lambda k: 0)
        cache.fill("a", 1)
        cache.fill("b", 2)
        assert cache.update("a", 10)  # "a" stays LRU
        cache.fill("c", 3)            # evicts "a", not "b"
        assert cache.peek("a") is None
        assert cache.peek("b") == 2
        assert cache.peek("c") == 3

    def test_lookup_by_contrast_promotes(self):
        cache = AssocCache(2, 2, set_of=lambda k: 0)
        cache.fill("a", 1)
        cache.fill("b", 2)
        assert cache.lookup("a") == 1  # promotes "a"; "b" is now LRU
        cache.fill("c", 3)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None

    def test_update_missing_returns_false_without_insert(self):
        cache = AssocCache(2)
        assert not cache.update("ghost", 1)
        assert cache.peek("ghost") is None
        assert cache.stats["t.update"] == 0
