"""Unit tests for the three TLB organizations."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.rights import Rights
from repro.hardware.tlb import AIDTaggedTLB, ASIDTaggedTLB, TranslationTLB


class TestTranslationTLB:
    def test_fill_and_lookup(self):
        tlb = TranslationTLB(8)
        tlb.fill(5, 42)
        entry = tlb.lookup(5)
        assert entry is not None and entry.pfn == 42
        assert entry.referenced

    def test_one_entry_per_page_no_domain_tag(self):
        """Translation-only entries are domain-independent (§3.2.1)."""
        tlb = TranslationTLB(8)
        tlb.fill(5, 42)
        tlb.fill(5, 42)  # "another domain" fills the same page
        assert len(tlb) == 1

    def test_invalidate_single_translation(self):
        tlb = TranslationTLB(8)
        tlb.fill(5, 42)
        assert tlb.invalidate(5)
        assert tlb.lookup(5) is None
        assert not tlb.invalidate(5)

    def test_dirty_bit(self):
        tlb = TranslationTLB(8)
        entry = tlb.fill(5, 42, dirty=True)
        assert entry.dirty

    def test_purge(self):
        tlb = TranslationTLB(8)
        for vpn in range(4):
            tlb.fill(vpn, vpn)
        assert tlb.purge() == 4
        assert len(tlb) == 0

    def test_contains_and_occupancy(self):
        tlb = TranslationTLB(4)
        tlb.fill(1, 1)
        assert 1 in tlb
        assert tlb.occupancy == 0.25


class TestAIDTaggedTLB:
    def test_entry_carries_rights_and_aid(self):
        tlb = AIDTaggedTLB(8)
        tlb.fill(5, 42, Rights.RW, aid=7)
        entry = tlb.lookup(5)
        assert entry is not None
        assert (entry.pfn, entry.rights, entry.aid) == (42, Rights.RW, 7)

    def test_update_rights_in_place(self):
        """Global rights changes touch a single TLB entry (§4.1.2)."""
        tlb = AIDTaggedTLB(8)
        tlb.fill(5, 42, Rights.RW, aid=7)
        assert tlb.update(5, rights=Rights.READ)
        entry = tlb.lookup(5)
        assert entry is not None and entry.rights == Rights.READ
        assert entry.aid == 7  # unchanged

    def test_update_aid_moves_group(self):
        tlb = AIDTaggedTLB(8)
        tlb.fill(5, 42, Rights.RW, aid=7)
        assert tlb.update(5, aid=9)
        entry = tlb.lookup(5)
        assert entry is not None and entry.aid == 9

    def test_update_missing_is_noop(self):
        tlb = AIDTaggedTLB(8)
        assert not tlb.update(5, rights=Rights.READ)

    def test_one_entry_regardless_of_sharers(self):
        tlb = AIDTaggedTLB(8)
        tlb.fill(5, 42, Rights.RW, aid=7)
        tlb.fill(5, 42, Rights.RW, aid=7)
        assert len(tlb) == 1


class TestASIDTaggedTLB:
    def test_entries_replicated_per_domain(self):
        """Sharing replicates conventional TLB entries (§3.1)."""
        tlb = ASIDTaggedTLB(8)
        tlb.fill(1, 5, 42, Rights.RW)
        tlb.fill(2, 5, 42, Rights.READ)
        assert len(tlb) == 2
        assert tlb.replicas(5) == 2
        a = tlb.lookup(1, 5)
        b = tlb.lookup(2, 5)
        assert a is not None and a.rights == Rights.RW
        assert b is not None and b.rights == Rights.READ

    def test_lookup_respects_asid(self):
        tlb = ASIDTaggedTLB(8)
        tlb.fill(1, 5, 42, Rights.RW)
        assert tlb.lookup(2, 5) is None

    def test_invalidate_page_sweeps_all_domains(self):
        """A mapping change must purge every domain's replica (§3.1)."""
        tlb = ASIDTaggedTLB(8)
        for asid in (1, 2, 3):
            tlb.fill(asid, 5, 42, Rights.RW)
        tlb.fill(1, 6, 43, Rights.RW)
        inspected, removed = tlb.invalidate_page(5)
        assert removed == 3
        assert inspected == 4
        assert tlb.replicas(5) == 0
        assert tlb.lookup(1, 6) is not None

    def test_invalidate_domain(self):
        tlb = ASIDTaggedTLB(8)
        tlb.fill(1, 5, 42, Rights.RW)
        tlb.fill(1, 6, 43, Rights.RW)
        tlb.fill(2, 5, 42, Rights.RW)
        _, removed = tlb.invalidate_domain(1)
        assert removed == 2
        assert tlb.lookup(2, 5) is not None

    def test_invalidate_domain_range(self):
        tlb = ASIDTaggedTLB(8)
        for vpn in range(4):
            tlb.fill(1, vpn, vpn, Rights.RW)
        _, removed = tlb.invalidate_domain_range(1, 1, 3)
        assert removed == 2
        assert tlb.lookup(1, 0) is not None
        assert tlb.lookup(1, 3) is not None

    def test_update_rights(self):
        tlb = ASIDTaggedTLB(8)
        tlb.fill(1, 5, 42, Rights.RW)
        assert tlb.update_rights(1, 5, Rights.NONE)
        entry = tlb.lookup(1, 5)
        assert entry is not None and entry.rights == Rights.NONE

    def test_purge(self):
        tlb = ASIDTaggedTLB(8)
        tlb.fill(1, 5, 42, Rights.RW)
        assert tlb.purge() == 1
        assert len(tlb) == 0


class TestTLBProperties:
    @settings(max_examples=50)
    @given(
        fills=st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 15)),
            min_size=1, max_size=50,
        )
    )
    def test_replicas_equal_distinct_asids(self, fills):
        tlb = ASIDTaggedTLB(256)
        for asid, vpn in fills:
            tlb.fill(asid, vpn, vpn, Rights.RW)
        for vpn in {vpn for _, vpn in fills}:
            expected = len({asid for asid, fvpn in fills if fvpn == vpn})
            assert tlb.replicas(vpn) == expected

    @settings(max_examples=50)
    @given(vpns=st.lists(st.integers(0, 30), min_size=1, max_size=60))
    def test_translation_tlb_never_replicates(self, vpns):
        tlb = TranslationTLB(256)
        for vpn in vpns:
            tlb.fill(vpn, vpn + 1000)
        assert len(tlb) == len(set(vpns))
