"""Unit tests for physical memory and the frame allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hardware.memory import OutOfMemoryError, PhysicalMemory


class TestAllocation:
    def test_allocate_returns_distinct_frames(self):
        memory = PhysicalMemory(4)
        frames = [memory.allocate() for _ in range(4)]
        assert len({frame.pfn for frame in frames}) == 4
        assert all(0 <= frame.pfn < 4 for frame in frames)

    def test_exhaustion_raises(self):
        memory = PhysicalMemory(2)
        memory.allocate()
        memory.allocate()
        with pytest.raises(OutOfMemoryError):
            memory.allocate()

    def test_release_recycles(self):
        memory = PhysicalMemory(1)
        frame = memory.allocate()
        memory.release(frame.pfn)
        again = memory.allocate()
        assert again.pfn == frame.pfn

    def test_release_unallocated_raises(self):
        memory = PhysicalMemory(4)
        with pytest.raises(KeyError):
            memory.release(0)

    def test_counters(self):
        memory = PhysicalMemory(4)
        frame = memory.allocate()
        memory.release(frame.pfn)
        assert memory.stats["memory.allocate"] == 1
        assert memory.stats["memory.release"] == 1

    def test_free_and_used_tracking(self):
        memory = PhysicalMemory(3)
        assert memory.free_frames == 3
        frame = memory.allocate()
        assert memory.free_frames == 2
        assert memory.used_frames == 1
        assert memory.is_allocated(frame.pfn)

    def test_vpn_recorded(self):
        memory = PhysicalMemory(2)
        frame = memory.allocate(vpn=0x42)
        assert memory.frame(frame.pfn).vpn == 0x42

    def test_rejects_empty_memory(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0)


class TestPageContents:
    def test_write_then_read(self):
        memory = PhysicalMemory(2, page_size=128)
        frame = memory.allocate()
        memory.write_page(frame.pfn, b"hello")
        assert memory.read_page(frame.pfn) == b"hello"

    def test_unwritten_page_reads_none(self):
        memory = PhysicalMemory(2)
        frame = memory.allocate()
        assert memory.read_page(frame.pfn) is None

    def test_oversized_image_rejected(self):
        memory = PhysicalMemory(2, page_size=16)
        frame = memory.allocate()
        with pytest.raises(ValueError):
            memory.write_page(frame.pfn, b"x" * 17)

    def test_release_discards_contents(self):
        memory = PhysicalMemory(1, page_size=64)
        frame = memory.allocate()
        memory.write_page(frame.pfn, b"secret")
        memory.release(frame.pfn)
        again = memory.allocate()
        assert memory.read_page(again.pfn) is None


class TestMemoryProperties:
    @given(st.lists(st.booleans(), max_size=60))
    def test_alloc_release_conservation(self, ops):
        """free + used always equals total frames."""
        memory = PhysicalMemory(8)
        live: list[int] = []
        for allocate in ops:
            if allocate and memory.free_frames:
                live.append(memory.allocate().pfn)
            elif not allocate and live:
                memory.release(live.pop())
            assert memory.free_frames + memory.used_frames == 8
