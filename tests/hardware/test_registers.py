"""Unit tests for processor control registers."""

from __future__ import annotations

import pytest

from repro.hardware.registers import GLOBAL_PAGE_GROUP, PDIDRegister, PIDEntry, PIDRegisterFile
from repro.sim.stats import Stats


class TestPDIDRegister:
    def test_initial_value_zero(self):
        assert PDIDRegister().value == 0

    def test_write_counts_one_register_write(self):
        """A domain switch is a single register write (§4.1.4)."""
        stats = Stats()
        reg = PDIDRegister(stats=stats)
        reg.write(7)
        assert reg.value == 7
        assert stats["pdid.write"] == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PDIDRegister().write(-1)

    def test_multiple_writes_accumulate(self):
        stats = Stats()
        reg = PDIDRegister(stats=stats)
        for pd in (1, 2, 1, 3):
            reg.write(pd)
        assert stats["pdid.write"] == 4
        assert reg.value == 3


class TestPIDEntry:
    def test_frozen(self):
        entry = PIDEntry(group=3)
        with pytest.raises(AttributeError):
            entry.group = 4  # type: ignore[misc]

    def test_defaults(self):
        entry = PIDEntry(group=3)
        assert not entry.write_disable


class TestPIDFileWrites:
    def test_every_load_counted(self):
        stats = Stats()
        file = PIDRegisterFile(size=4, stats=stats)
        file.install(PIDEntry(group=1))
        file.install(PIDEntry(group=2))
        file.drop(1)
        assert stats["pid.write"] == 3  # two installs + one clear-on-drop

    def test_contains(self):
        file = PIDRegisterFile()
        file.install(PIDEntry(group=2))
        assert 2 in file
        assert GLOBAL_PAGE_GROUP in file
        assert 9 not in file

    def test_clear_empty_is_free(self):
        stats = Stats()
        file = PIDRegisterFile(size=4, stats=stats)
        assert file.clear() == 0
        assert stats["pid.write"] == 0
