"""Unit tests for the data cache models, including the synonym and
homonym behaviour of Section 2.2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import MachineParams
from repro.hardware.cache import CacheOrg, DataCache

PARAMS = MachineParams()  # 32-byte lines, 4K pages
LINE = PARAMS.cache_line_bytes


def make(org=CacheOrg.VIVT, size=1024, ways=1, **kw) -> DataCache:
    return DataCache(size, ways, org, params=PARAMS, **kw)


def identity_translate(vaddr: int):
    """Physical address == virtual address (convenient for unit tests)."""
    return lambda: vaddr


class TestBasicCaching:
    def test_miss_then_hit(self):
        cache = make()
        first = cache.access(0x1000, identity_translate(0x1000))
        again = cache.access(0x1000, identity_translate(0x1000))
        assert not first.hit and again.hit

    def test_line_granularity(self):
        cache = make()
        cache.access(0x1000, identity_translate(0x1000))
        same_line = cache.access(0x1000 + LINE - 1, identity_translate(0x1000 + LINE - 1))
        next_line = cache.access(0x1000 + LINE, identity_translate(0x1000 + LINE))
        assert same_line.hit and not next_line.hit

    def test_write_allocate_and_dirty_writeback(self):
        cache = make(size=2 * LINE, ways=1)  # 2 sets, direct mapped
        cache.access(0, identity_translate(0), write=True)
        # A conflicting line in set 0 evicts the dirty victim.
        conflict = 2 * LINE
        result = cache.access(conflict, identity_translate(conflict))
        assert result.writeback
        assert cache.stats["dcache.writeback"] == 1

    def test_clean_eviction_no_writeback(self):
        cache = make(size=2 * LINE, ways=1)
        cache.access(0, identity_translate(0))
        result = cache.access(2 * LINE, identity_translate(2 * LINE))
        assert not result.writeback

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DataCache(100, 3, CacheOrg.VIVT, params=PARAMS)

    def test_occupancy(self):
        cache = make(size=4 * LINE)
        assert cache.occupancy == 0.0
        cache.access(0, identity_translate(0))
        assert cache.occupancy == 0.25


class TestTranslationLaziness:
    def test_vivt_translates_only_on_miss(self):
        """The PLB system's point: hits never consult the TLB (§3.2.1)."""
        cache = make(CacheOrg.VIVT)
        calls = 0

        def translate():
            nonlocal calls
            calls += 1
            return 0x1000

        miss = cache.access(0x1000, translate)
        hit = cache.access(0x1000, translate)
        assert calls == 1
        assert miss.translated and not hit.translated

    def test_vipt_translates_every_access(self):
        cache = make(CacheOrg.VIPT)
        calls = 0

        def translate():
            nonlocal calls
            calls += 1
            return 0x1000

        cache.access(0x1000, translate)
        cache.access(0x1000, translate)
        assert calls == 2

    def test_pipt_translates_every_access(self):
        cache = make(CacheOrg.PIPT)
        calls = 0

        def translate():
            nonlocal calls
            calls += 1
            return 0x1000

        cache.access(0x1000, translate)
        cache.access(0x1000, translate)
        assert calls == 2


class TestSynonyms:
    def test_vivt_synonym_detected(self):
        """Two virtual names for one physical line coexist in a VIVT
        cache — the write-coherence hazard of Section 2.2."""
        cache = make(CacheOrg.VIVT, size=64 * LINE, detect_hazards=True)
        paddr = 0x9000
        # The two virtual names index different sets, so both copies of
        # the physical line are resident at once.
        cache.access(0x1000, lambda: paddr, write=True)
        result = cache.access(0x2020, lambda: paddr)
        assert result.synonym_hazard
        assert cache.resident_copies(paddr >> 5) == 2
        assert cache.stats["dcache.synonym_hazard"] >= 1

    def test_pipt_cannot_hold_synonyms(self):
        cache = make(CacheOrg.PIPT, size=64 * LINE, detect_hazards=True)
        paddr = 0x9000
        cache.access(0x1000, lambda: paddr)
        result = cache.access(0x5000, lambda: paddr)
        assert result.hit  # same physical tag: one line, no duplicate
        assert cache.resident_copies(paddr >> 5) == 1

    def test_sasos_no_synonym_when_va_unique(self):
        """With one VA per datum (SASOS), VIVT never duplicates."""
        cache = make(CacheOrg.VIVT, size=64 * LINE, detect_hazards=True)
        for vaddr in (0x1000, 0x2000, 0x3000):
            cache.access(vaddr, identity_translate(vaddr))
            cache.access(vaddr, identity_translate(vaddr))
        assert cache.stats["dcache.synonym_hazard"] == 0


class TestHomonyms:
    def test_vivt_homonym_detected_and_neutralized(self):
        """Same VA, different physical targets across address spaces."""
        cache = make(CacheOrg.VIVT, size=64 * LINE, detect_hazards=True)
        cache.access(0x1000, lambda: 0x9000, asid=0)
        # Hardware without ASID tags would hit and return wrong data.
        result = cache.access(0x1000, lambda: 0xA000, asid=0)
        assert result.homonym_hazard
        assert not result.hit
        assert cache.stats["dcache.homonym_hazard"] == 1

    def test_asid_tags_separate_homonyms(self):
        """ASID-extended tags avoid the wrong-hit (§2.2's fix)."""
        cache = make(CacheOrg.VIVT, size=64 * LINE, asid_tagged=True, detect_hazards=True)
        cache.access(0x1000, lambda: 0x9000, asid=1)
        result = cache.access(0x1000, lambda: 0xA000, asid=2)
        assert not result.homonym_hazard
        assert not result.hit  # distinct tag, a simple miss
        assert cache.stats["dcache.homonym_hazard"] == 0

    def test_sasos_single_translation_no_homonym(self):
        cache = make(CacheOrg.VIVT, size=64 * LINE, detect_hazards=True)
        cache.access(0x1000, lambda: 0x9000, asid=1)
        result = cache.access(0x1000, lambda: 0x9000, asid=2)
        assert result.hit
        assert cache.stats["dcache.homonym_hazard"] == 0


class TestVIPTAliasing:
    def test_vipt_synonym_across_sets_detected(self):
        """When index bits exceed the page offset, a VIPT cache can hold
        one physical line in two sets (the classic VIPT constraint the
        paper's footnote 3 alludes to)."""
        # 64 sets * 32B = 2KB of index span < 4KB page: index within
        # page offset; grow the cache so index bits pass the page
        # boundary: 512 sets * 32B = 16KB > 4KB.
        cache = make(CacheOrg.VIPT, size=512 * LINE, ways=1, detect_hazards=True)
        paddr = 0x9000
        # Two virtual names for paddr differing in index bits above the
        # page offset (bit 12).
        cache.access(0x1000, lambda: paddr, write=True)
        result = cache.access(0x2000, lambda: paddr)
        assert result.synonym_hazard
        assert cache.resident_copies(paddr >> 5) == 2

    def test_vipt_same_color_synonyms_coalesce(self):
        """Synonyms agreeing in index bits hit the same line (physical
        tags match): page-coloring makes VIPT safe."""
        cache = make(CacheOrg.VIPT, size=512 * LINE, ways=1, detect_hazards=True)
        paddr = 0x9000
        cache.access(0x1000, lambda: paddr, write=True)
        # 0x5000 and 0x1000 share index bits modulo the cache span.
        result = cache.access(0x5000, lambda: paddr)
        assert result.hit
        assert cache.resident_copies(paddr >> 5) == 1


class TestFlushing:
    def test_flush_page_removes_only_that_page(self):
        cache = make(size=256 * LINE)
        cache.access(0x1000, identity_translate(0x1000), write=True)
        cache.access(0x2000, identity_translate(0x2000))
        flushed, writebacks = cache.flush_page(1)  # vpn 1 = 0x1000
        assert flushed == 1 and writebacks == 1
        assert not cache.access(0x1000, identity_translate(0x1000)).hit

    def test_flush_page_counts_per_line_ops(self):
        """Flush is one operation per cache line (§4.1.3)."""
        cache = make(size=256 * LINE)
        for offset in range(0, 4 * LINE, LINE):
            cache.access(0x1000 + offset, identity_translate(0x1000 + offset))
        flushed, _ = cache.flush_page(1)
        assert flushed == 4
        assert cache.stats["dcache.flush_lines"] == 4

    def test_flush_frame_for_physical_caches(self):
        cache = make(CacheOrg.PIPT, size=256 * LINE)
        cache.access(0x1000, lambda: 0x3000, write=True)
        flushed, writebacks = cache.flush_frame(3)
        assert flushed == 1 and writebacks == 1

    def test_purge_writes_back_dirty_lines(self):
        cache = make(size=64 * LINE)
        cache.access(0x0, identity_translate(0x0), write=True)
        cache.access(0x20, identity_translate(0x20))  # a different set
        assert cache.purge() == 2
        assert cache.stats["dcache.writeback"] == 1
        assert len(cache) == 0


class TestWritebackModel:
    """Differential test: the cache's dirty/writeback behaviour against
    a brute-force reference model."""

    @settings(max_examples=40)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 63), st.booleans()),  # (line#, write?)
            min_size=1, max_size=150,
        ),
        ways=st.sampled_from([1, 2, 4]),
    )
    def test_writebacks_match_reference(self, ops, ways):
        cache = DataCache(8 * LINE, ways, CacheOrg.VIVT, params=PARAMS)
        n_sets = cache.n_sets
        # Reference: per-set list of (line#, dirty), LRU order.
        model: dict[int, list[list]] = {s: [] for s in range(n_sets)}
        model_writebacks = 0
        for line_no, write in ops:
            vaddr = line_no * LINE
            cache.access(vaddr, identity_translate(vaddr), write=write)
            entries = model[line_no % n_sets]
            found = next((e for e in entries if e[0] == line_no), None)
            if found:
                entries.remove(found)
                found[1] = found[1] or write
                entries.append(found)
            else:
                if len(entries) >= ways:
                    victim = entries.pop(0)
                    if victim[1]:
                        model_writebacks += 1
                entries.append([line_no, write])
        assert cache.stats["dcache.writeback"] == model_writebacks
        model_lines = sorted(e[0] for s in model.values() for e in s)
        # Residency agrees too (probe without disturbing LRU).
        for line_no in model_lines:
            key = cache._tag_key(line_no * LINE, None, 0)
            assert key in cache._sets[line_no % n_sets]


class TestCacheProperties:
    @settings(max_examples=40)
    @given(
        addrs=st.lists(st.integers(0, 1 << 20).map(lambda a: a & ~7), min_size=1, max_size=120),
        org=st.sampled_from(list(CacheOrg)),
        ways=st.sampled_from([1, 2, 4]),
    )
    def test_capacity_never_exceeded(self, addrs, org, ways):
        cache = DataCache(32 * LINE, ways, org, params=PARAMS)
        for vaddr in addrs:
            cache.access(vaddr, identity_translate(vaddr))
        assert len(cache) <= cache.n_lines

    @settings(max_examples=40)
    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=80))
    def test_repeat_access_hits_within_capacity(self, addrs):
        """Any address re-accessed immediately must hit."""
        cache = DataCache(64 * LINE, 4, CacheOrg.VIVT, params=PARAMS)
        for vaddr in addrs:
            cache.access(vaddr, identity_translate(vaddr))
            assert cache.access(vaddr, identity_translate(vaddr)).hit

    @settings(max_examples=40)
    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=80))
    def test_identity_mapping_never_hazards(self, addrs):
        """A single address space (unique VA<->PA) has no hazards."""
        cache = DataCache(
            32 * LINE, 2, CacheOrg.VIVT, params=PARAMS, detect_hazards=True
        )
        for vaddr in addrs:
            result = cache.access(vaddr, identity_translate(vaddr))
            assert not result.synonym_hazard
            assert not result.homonym_hazard
