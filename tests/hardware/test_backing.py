"""Unit tests for the backing store and compressed store."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hardware.backing import BackingStore, CompressedStore


class TestBackingStore:
    def test_write_read_roundtrip(self):
        store = BackingStore()
        store.write(5, b"page data")
        assert store.read(5) == b"page data"

    def test_read_missing_raises(self):
        with pytest.raises(KeyError):
            BackingStore().read(9)

    def test_overwrite(self):
        store = BackingStore()
        store.write(1, b"old")
        store.write(1, b"new")
        assert store.read(1) == b"new"
        assert len(store) == 1

    def test_discard(self):
        store = BackingStore()
        store.write(1, b"x")
        assert store.discard(1)
        assert not store.discard(1)
        assert 1 not in store

    def test_io_counters(self):
        store = BackingStore()
        store.write(1, b"abcd")
        store.read(1)
        assert store.stats["disk.write"] == 1
        assert store.stats["disk.read"] == 1
        assert store.stats["disk.bytes_written"] == 4
        assert store.stats["disk.bytes_read"] == 4


class TestCompressedStore:
    def test_roundtrip_preserves_data(self):
        store = CompressedStore()
        data = bytes(3000) + b"incompressible-ish tail" * 10
        store.page_out(7, data)
        assert store.page_in(7) == data

    def test_compressible_data_shrinks(self):
        store = CompressedStore()
        stored = store.page_out(1, bytes(4096))
        assert stored < 4096
        assert store.compression_ratio > 10

    def test_ratio_zero_before_any_pageout(self):
        assert CompressedStore().compression_ratio == 0.0

    def test_contains(self):
        store = CompressedStore()
        store.page_out(3, b"data")
        assert 3 in store
        assert 4 not in store

    def test_counters(self):
        store = CompressedStore()
        store.page_out(1, bytes(100))
        store.page_in(1)
        assert store.stats["compress.page_out"] == 1
        assert store.stats["compress.page_in"] == 1
        assert store.stats["compress.raw_bytes"] == 100

    @given(st.binary(max_size=4096))
    def test_any_page_roundtrips(self, data):
        store = CompressedStore()
        store.page_out(0, data)
        assert store.page_in(0) == data
