"""Unit tests for the backing store and compressed store."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.faults.errors import CorruptPageError, DiskError, MissingPageError
from repro.hardware.backing import BackingStore, CompressedStore


class TestBackingStore:
    def test_write_read_roundtrip(self):
        store = BackingStore()
        store.write(5, b"page data")
        assert store.read(5) == b"page data"

    def test_read_missing_raises(self):
        # MissingPageError subclasses KeyError, so pre-fault-model
        # callers that caught KeyError still work.
        with pytest.raises(MissingPageError):
            BackingStore().read(9)
        with pytest.raises(KeyError):
            BackingStore().read(9)

    def test_missing_page_error_is_a_typed_disk_error(self):
        error = pytest.raises(DiskError, BackingStore().read, 9).value
        assert "0x9" in str(error)
        # KeyError's repr-quoting __str__ is overridden: the message
        # must read as prose, not as a quoted key.
        assert not str(error).startswith("'")

    def test_torn_write_detected_on_read(self):
        store = BackingStore()
        store.write(5, b"intended image")
        store._pages[5] = b"torn"  # disk stored something else
        with pytest.raises(CorruptPageError):
            store.read(5)

    def test_bit_rot_detected_on_read(self):
        store = BackingStore()
        store.write(5, b"\x00" * 64)
        store._pages[5] = b"\x00" * 32 + b"\x01" + b"\x00" * 31
        with pytest.raises(CorruptPageError):
            store.read(5)

    def test_rewrite_clears_corruption(self):
        store = BackingStore()
        store.write(5, b"good")
        store._pages[5] = b"rot!"
        store.write(5, b"fresh")
        assert store.read(5) == b"fresh"

    def test_peek_returns_raw_image_without_accounting(self):
        store = BackingStore()
        assert store.peek(5) is None
        store.write(5, b"image")
        reads_before = store.stats["disk.read"]
        assert store.peek(5) == b"image"
        assert store.stats["disk.read"] == reads_before

    def test_peek_skips_verification(self):
        store = BackingStore()
        store.write(5, b"good")
        store._pages[5] = b"rot!"
        assert store.peek(5) == b"rot!"  # journal sees the disk as-is

    def test_overwrite(self):
        store = BackingStore()
        store.write(1, b"old")
        store.write(1, b"new")
        assert store.read(1) == b"new"
        assert len(store) == 1

    def test_discard(self):
        store = BackingStore()
        store.write(1, b"x")
        assert store.discard(1)
        assert not store.discard(1)
        assert 1 not in store

    def test_io_counters(self):
        store = BackingStore()
        store.write(1, b"abcd")
        store.read(1)
        assert store.stats["disk.write"] == 1
        assert store.stats["disk.read"] == 1
        assert store.stats["disk.bytes_written"] == 4
        assert store.stats["disk.bytes_read"] == 4


class TestCompressedStore:
    def test_roundtrip_preserves_data(self):
        store = CompressedStore()
        data = bytes(3000) + b"incompressible-ish tail" * 10
        store.page_out(7, data)
        assert store.page_in(7) == data

    def test_compressible_data_shrinks(self):
        store = CompressedStore()
        stored = store.page_out(1, bytes(4096))
        assert stored < 4096
        assert store.compression_ratio > 10

    def test_ratio_zero_before_any_pageout(self):
        assert CompressedStore().compression_ratio == 0.0

    def test_contains(self):
        store = CompressedStore()
        store.page_out(3, b"data")
        assert 3 in store
        assert 4 not in store

    def test_counters(self):
        store = CompressedStore()
        store.page_out(1, bytes(100))
        store.page_in(1)
        assert store.stats["compress.page_out"] == 1
        assert store.stats["compress.page_in"] == 1
        assert store.stats["compress.raw_bytes"] == 100

    @given(st.binary(max_size=4096))
    def test_any_page_roundtrips(self, data):
        store = CompressedStore()
        store.page_out(0, data)
        assert store.page_in(0) == data
