"""Unit and property tests for access rights."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.rights import AccessType, Rights, parse_rights


class TestRights:
    def test_none_allows_nothing(self):
        for access in AccessType:
            assert not Rights.NONE.allows(access)

    def test_rwx_allows_everything(self):
        for access in AccessType:
            assert Rights.RWX.allows(access)

    @pytest.mark.parametrize(
        "rights,access,expected",
        [
            (Rights.READ, AccessType.READ, True),
            (Rights.READ, AccessType.WRITE, False),
            (Rights.READ, AccessType.EXECUTE, False),
            (Rights.WRITE, AccessType.WRITE, True),
            (Rights.WRITE, AccessType.READ, False),
            (Rights.RW, AccessType.READ, True),
            (Rights.RW, AccessType.WRITE, True),
            (Rights.RW, AccessType.EXECUTE, False),
            (Rights.EXECUTE, AccessType.EXECUTE, True),
            (Rights.RX, AccessType.EXECUTE, True),
            (Rights.RX, AccessType.WRITE, False),
        ],
    )
    def test_allows_matrix(self, rights, access, expected):
        assert rights.allows(access) is expected

    def test_without_write_strips_only_write(self):
        assert Rights.RWX.without_write() == Rights.RX
        assert Rights.RW.without_write() == Rights.READ
        assert Rights.READ.without_write() == Rights.READ
        assert Rights.NONE.without_write() == Rights.NONE

    def test_describe(self):
        assert Rights.NONE.describe() == "---"
        assert Rights.RW.describe() == "rw-"
        assert Rights.RWX.describe() == "rwx"
        assert Rights.EXECUTE.describe() == "--x"

    def test_flags_combine(self):
        assert (Rights.READ | Rights.WRITE) == Rights.RW
        assert (Rights.RW & Rights.READ) == Rights.READ


class TestAccessType:
    def test_required_rights(self):
        assert AccessType.READ.required_right == Rights.READ
        assert AccessType.WRITE.required_right == Rights.WRITE
        assert AccessType.EXECUTE.required_right == Rights.EXECUTE

    def test_is_write(self):
        assert AccessType.WRITE.is_write
        assert not AccessType.READ.is_write
        assert not AccessType.EXECUTE.is_write


class TestParseRights:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("", Rights.NONE),
            ("---", Rights.NONE),
            ("r", Rights.READ),
            ("rw", Rights.RW),
            ("rw-", Rights.RW),
            ("r-x", Rights.RX),
            ("rwx", Rights.RWX),
            ("x", Rights.EXECUTE),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_rights(text) == expected

    def test_rejects_unknown_characters(self):
        with pytest.raises(ValueError, match="unknown rights character"):
            parse_rights("rq")


class TestRightsProperties:
    rights_strategy = st.sampled_from(
        [Rights.NONE, Rights.READ, Rights.WRITE, Rights.EXECUTE,
         Rights.RW, Rights.RX, Rights.RWX, Rights.WRITE | Rights.EXECUTE]
    )

    @given(rights_strategy)
    def test_describe_parse_roundtrip(self, rights):
        assert parse_rights(rights.describe()) == rights

    @given(rights_strategy)
    def test_without_write_never_allows_write(self, rights):
        assert not rights.without_write().allows(AccessType.WRITE)

    @given(rights_strategy)
    def test_without_write_preserves_read_execute(self, rights):
        stripped = rights.without_write()
        assert stripped.allows(AccessType.READ) == rights.allows(AccessType.READ)
        assert stripped.allows(AccessType.EXECUTE) == rights.allows(AccessType.EXECUTE)

    @given(rights_strategy, rights_strategy)
    def test_union_allows_superset(self, a, b):
        union = a | b
        for access in AccessType:
            assert union.allows(access) == (a.allows(access) or b.allows(access))
