"""Tests for the §4.2 critical-path model."""

from __future__ import annotations

import pytest

from repro.core.costs import critical_path
from repro.core.params import DEFAULT_PARAMS, MachineParams


class TestCriticalPath:
    def test_pagegroup_serializes_two_stages(self):
        path = critical_path("pagegroup")
        assert path.sequential_stages == 2
        assert "THEN" in path.description

    def test_plb_single_parallel_stage(self):
        path = critical_path("plb")
        assert path.sequential_stages == 1

    def test_plb_tag_is_vpn_plus_pdid(self):
        path = critical_path("plb")
        assert path.tag_compare_bits == DEFAULT_PARAMS.vpn_bits + DEFAULT_PARAMS.pd_id_bits

    def test_pagegroup_tag_is_vpn_plus_aid(self):
        path = critical_path("pagegroup")
        assert path.tag_compare_bits == DEFAULT_PARAMS.vpn_bits + DEFAULT_PARAMS.aid_bits

    def test_conventional(self):
        path = critical_path("conventional")
        assert path.sequential_stages == 1

    def test_widths_track_parameters(self):
        params = MachineParams(va_bits=48, pd_id_bits=12)
        path = critical_path("plb", params)
        assert path.tag_compare_bits == (48 - 12) + 12

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            critical_path("bogus")
