"""Unit tests for the three memory systems, using stub OS sources.

These tests exercise the MMU layer in isolation (no kernel): stub
protection/translation/group sources supply mappings, and the tests
verify the reference-path behaviour the paper prescribes for each model.
"""

from __future__ import annotations

import pytest

from repro.core.mmu import (
    ConventionalSystem,
    FaultReason,
    PageFault,
    PageGroupSystem,
    PLBSystem,
    ProtectionFault,
    ProtectionInfo,
    TranslationInfo,
)
from repro.core.pagegroup import PageGroupCache
from repro.core.params import DEFAULT_PARAMS
from repro.core.rights import AccessType, Rights
from repro.hardware.registers import PIDEntry, PIDRegisterFile

PAGE = DEFAULT_PARAMS.page_size


class StubProtection:
    """ProtectionSource backed by a dict."""

    def __init__(self, table: dict[tuple[int, int], ProtectionInfo]):
        self.table = table
        self.queries = 0

    def rights_for(self, pd_id, vpn):
        self.queries += 1
        return self.table.get((pd_id, vpn))


class StubTranslation:
    """TranslationSource backed by a dict."""

    def __init__(self, table: dict[int, int]):
        self.table = table
        self.queries = 0

    def translation_for(self, vpn):
        self.queries += 1
        pfn = self.table.get(vpn)
        return None if pfn is None else TranslationInfo(pfn=pfn)


class StubGroups:
    """GroupSource backed by dicts."""

    def __init__(self, pages: dict[int, tuple[int, Rights, int]],
                 holdings: dict[int, dict[int, PIDEntry]]):
        self.pages = pages
        self.holdings = holdings

    def page_info(self, vpn):
        return self.pages.get(vpn)

    def domain_group_entry(self, pd_id, group):
        return self.holdings.get(pd_id, {}).get(group)

    def domain_groups(self, pd_id):
        return list(self.holdings.get(pd_id, {}).values())


class StubDomainPages:
    """DomainPageSource backed by dicts."""

    def __init__(self, table: dict[tuple[int, int], tuple[int, Rights]],
                 resident: set[int]):
        self.table = table
        self.resident = resident

    def domain_page(self, pd_id, vpn):
        return self.table.get((pd_id, vpn))

    def page_resident(self, vpn):
        return vpn in self.resident


# --------------------------------------------------------------------- #
# PLB system


def make_plb_system(**kw):
    protection = StubProtection({(1, 0): ProtectionInfo(Rights.RW),
                                 (1, 1): ProtectionInfo(Rights.READ),
                                 (2, 0): ProtectionInfo(Rights.READ)})
    translation = StubTranslation({0: 100, 1: 101})
    system = PLBSystem(protection, translation, **kw)
    return system, protection, translation


class TestPLBSystem:
    def test_access_fills_plb_lazily(self):
        system, protection, _ = make_plb_system()
        system.switch_domain(1)
        result = system.read(0)
        assert result.protection_refill
        assert protection.queries == 1
        system.read(8)  # same page, PLB hit
        assert protection.queries == 1

    def test_unattached_page_faults(self):
        system, _, _ = make_plb_system()
        system.switch_domain(1)
        with pytest.raises(ProtectionFault) as err:
            system.read(5 * PAGE)
        assert err.value.reason is FaultReason.UNATTACHED

    def test_denied_write_faults(self):
        system, _, _ = make_plb_system()
        system.switch_domain(1)
        with pytest.raises(ProtectionFault) as err:
            system.write(1 * PAGE)
        assert err.value.reason is FaultReason.DENIED
        assert err.value.rights == Rights.READ

    def test_protection_checked_before_translation(self):
        """The PLB is probed in parallel with the cache — before any
        translation; an illegal access never touches the TLB."""
        system, _, translation = make_plb_system()
        system.switch_domain(1)
        with pytest.raises(ProtectionFault):
            system.write(1 * PAGE)
        assert translation.queries == 0

    def test_translation_only_on_cache_miss(self):
        system, _, translation = make_plb_system()
        system.switch_domain(1)
        system.read(0)
        queries_after_miss = translation.queries
        system.read(0)  # cache hit: no TLB involvement at all
        assert translation.queries == queries_after_miss
        assert system.stats["tlb.off_chip_access"] == 1

    def test_unmapped_page_raises_pagefault(self):
        protection = StubProtection({(1, 9): ProtectionInfo(Rights.RW)})
        system = PLBSystem(protection, StubTranslation({}))
        system.switch_domain(1)
        with pytest.raises(PageFault):
            system.read(9 * PAGE)

    def test_domain_switch_is_one_register_write(self):
        """Section 4.1.4: nothing is purged on a PLB domain switch."""
        system, _, _ = make_plb_system()
        system.switch_domain(1)
        system.read(0)
        plb_len = len(system.plb)
        tlb_len = len(system.tlb)
        system.switch_domain(2)
        assert system.stats["pdid.write"] == 2
        assert len(system.plb) == plb_len
        assert len(system.tlb) == tlb_len

    def test_two_domains_coexist_in_plb(self):
        system, _, _ = make_plb_system()
        system.switch_domain(1)
        system.read(0)
        system.switch_domain(2)
        system.read(0)
        assert system.plb.entries_for_page(0) == 2
        # Translation is shared: one TLB entry despite two domains.
        assert len(system.tlb) == 1

    def test_superpage_protection_level(self):
        protection = StubProtection({(1, vpn): ProtectionInfo(Rights.RW, level=2)
                                     for vpn in range(4)})
        translation = StubTranslation({vpn: vpn + 50 for vpn in range(4)})
        system = PLBSystem(protection, translation, plb_levels=(2, 0))
        system.switch_domain(1)
        system.read(0)
        assert protection.queries == 1
        # The rest of the superpage hits without new protection queries.
        for vpn in range(1, 4):
            system.read(vpn * PAGE)
        assert protection.queries == 1
        assert len(system.plb) == 1


# --------------------------------------------------------------------- #
# Page-group system


def make_pg_system(**kw):
    pages = {0: (100, Rights.RW, 7), 1: (101, Rights.READ, 7), 2: (102, Rights.RW, 8)}
    holdings = {1: {7: PIDEntry(group=7)}, 2: {7: PIDEntry(group=7, write_disable=True)}}
    source = StubGroups(pages, holdings)
    system = PageGroupSystem(source, **kw)
    return system, source


class TestPageGroupSystem:
    def test_group_miss_reloads_when_held(self):
        system, _ = make_pg_system()
        system.switch_domain(1)
        result = system.read(0)
        assert result.protection_refill  # group faulted into the cache
        assert system.stats["group_reload"] == 1
        system.read(PAGE)  # same group: no further reload
        assert system.stats["group_reload"] == 1

    def test_unheld_group_faults(self):
        system, _ = make_pg_system()
        system.switch_domain(1)
        with pytest.raises(ProtectionFault) as err:
            system.read(2 * PAGE)
        assert err.value.reason is FaultReason.UNATTACHED

    def test_rights_field_enforced(self):
        system, _ = make_pg_system()
        system.switch_domain(1)
        with pytest.raises(ProtectionFault) as err:
            system.write(1 * PAGE)
        assert err.value.reason is FaultReason.DENIED

    def test_write_disable_bit_masks_writes(self):
        """Domain 2 holds group 7 write-disabled (Figure 2's D bit)."""
        system, _ = make_pg_system()
        system.switch_domain(2)
        system.read(0)  # reads fine
        with pytest.raises(ProtectionFault):
            system.write(0)

    def test_domain_switch_purges_group_cache(self):
        system, _ = make_pg_system()
        system.switch_domain(1)
        system.read(0)
        assert len(system.groups) == 1  # type: ignore[arg-type]
        system.switch_domain(2)
        assert len(system.groups) == 0  # type: ignore[arg-type]

    def test_eager_reload_on_switch(self):
        system, _ = make_pg_system(eager_reload=True)
        system.switch_domain(1)
        assert system.stats["group_eager_load"] == 1
        system.read(0)
        assert system.stats["group_reload"] == 0

    def test_tlb_shared_across_domains(self):
        """One AID-tagged entry serves every domain (§3.2.2)."""
        system, _ = make_pg_system()
        system.switch_domain(1)
        system.read(0)
        system.switch_domain(2)
        system.read(0)
        assert len(system.tlb) == 1

    def test_register_file_holder(self):
        system, _ = make_pg_system(group_holder="registers", group_capacity=4)
        assert isinstance(system.groups, PIDRegisterFile)
        system.switch_domain(1)
        system.read(0)
        assert system.stats["group_reload"] == 1

    def test_unknown_holder_rejected(self):
        with pytest.raises(ValueError):
            make_pg_system(group_holder="bogus")

    def test_unmapped_page_pagefaults(self):
        system, _ = make_pg_system()
        system.switch_domain(1)
        with pytest.raises(PageFault):
            system.read(9 * PAGE)


# --------------------------------------------------------------------- #
# Conventional system


def make_conv_system(**kw):
    table = {(1, 0): (100, Rights.RW), (2, 0): (100, Rights.READ),
             (1, 1): (101, Rights.READ)}
    source = StubDomainPages(table, resident={0, 1, 3})
    system = ConventionalSystem(source, **kw)
    return system, source


class TestConventionalSystem:
    def test_per_domain_entries_replicate(self):
        system, _ = make_conv_system()
        system.switch_domain(1)
        system.read(0)
        system.switch_domain(2)
        system.read(0)
        assert system.tlb.replicas(0) == 2

    def test_rights_enforced_per_domain(self):
        system, _ = make_conv_system()
        system.switch_domain(2)
        with pytest.raises(ProtectionFault) as err:
            system.write(0)
        assert err.value.reason is FaultReason.DENIED

    def test_resident_but_unattached_is_protection_fault(self):
        system, _ = make_conv_system()
        system.switch_domain(2)
        with pytest.raises(ProtectionFault) as err:
            system.read(3 * PAGE)
        assert err.value.reason is FaultReason.UNATTACHED

    def test_nonresident_is_page_fault(self):
        system, _ = make_conv_system()
        system.switch_domain(1)
        with pytest.raises(PageFault):
            system.read(9 * PAGE)

    def test_tagged_switch_keeps_tlb(self):
        system, _ = make_conv_system(asid_tagged=True)
        system.switch_domain(1)
        system.read(0)
        system.switch_domain(2)
        assert len(system.tlb) == 1  # domain 1's entry survives

    def test_untagged_switch_purges_tlb(self):
        """Without ASIDs, a switch discards even still-valid
        translations (§3.1)."""
        system, _ = make_conv_system(asid_tagged=False)
        system.switch_domain(1)
        system.read(0)
        assert len(system.tlb) == 1
        system.switch_domain(2)
        assert len(system.tlb) == 0
        # Both switches purged (the first found an empty TLB).
        assert system.stats["asidtlb.purge"] == 2
        assert system.stats["asidtlb.purge_removed"] == 1
