"""Unit and property tests for the page-group protection model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pagegroup import (
    GLOBAL_PAGE_GROUP,
    PageGroupCache,
    PIDEntry,
    PIDRegisterFile,
    check_group_access,
)
from repro.core.rights import AccessType, Rights


class TestPageGroupCache:
    def test_miss_then_install_then_hit(self):
        cache = PageGroupCache(4)
        assert cache.find(7) is None
        cache.install(PIDEntry(group=7))
        found = cache.find(7)
        assert found is not None and found.group == 7

    def test_group_zero_always_matches(self):
        """Group 0 is global to all domains (Section 3.2.2)."""
        cache = PageGroupCache(4)
        entry = cache.find(GLOBAL_PAGE_GROUP)
        assert entry is not None
        assert not entry.write_disable

    def test_lru_replacement(self):
        cache = PageGroupCache(2)
        cache.install(PIDEntry(group=1))
        cache.install(PIDEntry(group=2))
        cache.find(1)  # promote
        evicted = cache.install(PIDEntry(group=3))
        assert evicted == 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_drop(self):
        cache = PageGroupCache(4)
        cache.install(PIDEntry(group=5))
        assert cache.drop(5)
        assert not cache.drop(5)
        assert 5 not in cache

    def test_clear_counts_entries(self):
        cache = PageGroupCache(4)
        cache.install(PIDEntry(group=1))
        cache.install(PIDEntry(group=2))
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_write_disable_preserved(self):
        cache = PageGroupCache(4)
        cache.install(PIDEntry(group=9, write_disable=True))
        found = cache.find(9)
        assert found is not None and found.write_disable

    def test_resident_groups(self):
        cache = PageGroupCache(4)
        cache.install(PIDEntry(group=1))
        cache.install(PIDEntry(group=2))
        assert sorted(cache.resident_groups()) == [1, 2]


class TestPIDRegisterFile:
    def test_four_registers_by_default(self):
        file = PIDRegisterFile()
        assert file.size == 4

    def test_install_and_find(self):
        file = PIDRegisterFile()
        file.install(PIDEntry(group=3))
        found = file.find(3)
        assert found is not None and found.group == 3

    def test_group_zero_needs_no_register(self):
        file = PIDRegisterFile()
        assert file.find(GLOBAL_PAGE_GROUP) is not None

    def test_round_robin_replacement_on_overflow(self):
        file = PIDRegisterFile(size=2)
        file.install(PIDEntry(group=1))
        file.install(PIDEntry(group=2))
        file.install(PIDEntry(group=3))  # replaces slot 0
        assert file.find(1) is None
        assert file.find(2) is not None
        assert file.find(3) is not None
        assert file.stats["pid.replace"] == 1

    def test_reinstall_refreshes_in_place(self):
        file = PIDRegisterFile(size=2)
        file.install(PIDEntry(group=1))
        file.install(PIDEntry(group=1, write_disable=True))
        found = file.find(1)
        assert found is not None and found.write_disable
        assert len(file.resident_groups()) == 1

    def test_drop(self):
        file = PIDRegisterFile()
        file.install(PIDEntry(group=6))
        assert file.drop(6)
        assert file.find(6) is None
        assert not file.drop(6)

    def test_clear_counts_writes(self):
        file = PIDRegisterFile(size=4)
        file.install(PIDEntry(group=1))
        file.install(PIDEntry(group=2))
        assert file.clear() == 2

    def test_load_bounds(self):
        file = PIDRegisterFile(size=2)
        with pytest.raises(IndexError):
            file.load(2, PIDEntry(group=1))

    def test_rejects_empty_file(self):
        with pytest.raises(ValueError):
            PIDRegisterFile(size=0)


class TestCheckGroupAccess:
    """The Figure 2 protection check."""

    def _holder_with(self, group: int, write_disable: bool = False) -> PageGroupCache:
        cache = PageGroupCache(4)
        cache.install(PIDEntry(group=group, write_disable=write_disable))
        return cache

    def test_matching_group_allows_per_rights(self):
        holder = self._holder_with(7)
        decision = check_group_access(7, Rights.RW, AccessType.WRITE, holder)
        assert decision.group_hit and decision.allowed
        assert decision.effective_rights == Rights.RW

    def test_missing_group_is_group_miss(self):
        holder = self._holder_with(7)
        decision = check_group_access(9, Rights.RW, AccessType.READ, holder)
        assert not decision.group_hit and not decision.allowed

    def test_write_disable_masks_writes_only(self):
        """The D bit disables writes to the whole group (Figure 2)."""
        holder = self._holder_with(7, write_disable=True)
        write = check_group_access(7, Rights.RW, AccessType.WRITE, holder)
        read = check_group_access(7, Rights.RW, AccessType.READ, holder)
        assert write.group_hit and not write.allowed
        assert write.effective_rights == Rights.READ
        assert read.allowed

    def test_rights_field_still_enforced(self):
        holder = self._holder_with(7)
        decision = check_group_access(7, Rights.READ, AccessType.WRITE, holder)
        assert decision.group_hit and not decision.allowed

    def test_group_zero_with_register_file(self):
        file = PIDRegisterFile()
        decision = check_group_access(
            GLOBAL_PAGE_GROUP, Rights.READ, AccessType.READ, file
        )
        assert decision.group_hit and decision.allowed

    def test_works_with_register_file_holder(self):
        file = PIDRegisterFile()
        file.install(PIDEntry(group=4))
        decision = check_group_access(4, Rights.RX, AccessType.EXECUTE, file)
        assert decision.allowed


class TestPageGroupProperties:
    @settings(max_examples=60)
    @given(
        groups=st.lists(st.integers(1, 30), min_size=1, max_size=40),
        capacity=st.sampled_from([2, 4, 8]),
    )
    def test_cache_capacity_respected(self, groups, capacity):
        cache = PageGroupCache(capacity)
        for group in groups:
            cache.install(PIDEntry(group=group))
        assert len(cache) <= capacity

    @settings(max_examples=60)
    @given(
        aid=st.integers(0, 20),
        held=st.lists(st.integers(1, 20), max_size=4, unique=True),
        rights=st.sampled_from([Rights.NONE, Rights.READ, Rights.RW, Rights.RWX]),
        access=st.sampled_from(list(AccessType)),
        write_disable=st.booleans(),
    )
    def test_check_never_exceeds_rights_field(self, aid, held, rights, access, write_disable):
        """Hardware never grants more than the page's rights field."""
        holder = PageGroupCache(8)
        for group in held:
            holder.install(PIDEntry(group=group, write_disable=write_disable))
        decision = check_group_access(aid, rights, access, holder)
        if decision.allowed:
            assert rights.allows(access)
            assert aid == GLOBAL_PAGE_GROUP or aid in held

    @settings(max_examples=60)
    @given(
        aid=st.integers(1, 20),
        held=st.lists(st.integers(1, 20), max_size=4, unique=True),
        access=st.sampled_from([AccessType.READ, AccessType.EXECUTE]),
    )
    def test_write_disable_never_affects_reads(self, aid, held, access):
        plain = PageGroupCache(8)
        disabled = PageGroupCache(8)
        for group in held:
            plain.install(PIDEntry(group=group))
            disabled.install(PIDEntry(group=group, write_disable=True))
        a = check_group_access(aid, Rights.RWX, access, plain)
        b = check_group_access(aid, Rights.RWX, access, disabled)
        assert a.allowed == b.allowed
