"""Kernel rights changes must rewrite, not orphan, resident TLB state.

The stale-rights bug class: a protection verb updates the kernel tables
but leaves a hardware entry (AID-TLB tag/rights, ASID-TLB rights)
carrying the old grant.  These tests pin the in-place rewrite for the
page-group and conventional models and cross-check with the structural
invariant sweep (``repro.check.invariants``).
"""

from __future__ import annotations

import pytest

from repro.check import check_invariants
from repro.core.mmu import ProtectionFault
from repro.core.rights import AccessType, Rights
from repro.os.kernel import Kernel


def touch(kernel, domain, vpn, access=AccessType.READ):
    kernel.switch_to(domain)
    return kernel.system.access(kernel.params.vaddr(vpn), access)


class TestPageGroupTLBRights:
    def make(self):
        kernel = Kernel("pagegroup")
        a = kernel.create_domain("a")
        b = kernel.create_domain("b")
        segment = kernel.create_segment("s", 4)
        kernel.attach(a, segment, Rights.RW)
        kernel.attach(b, segment, Rights.RW)
        return kernel, a, b, segment

    def test_set_rights_all_rewrites_resident_entry(self):
        kernel, a, b, segment = self.make()
        vpn = segment.base_vpn
        touch(kernel, a, vpn)  # AID-TLB entry now resident with RW
        kernel.set_rights_all_domains(vpn, Rights.READ)
        entries = dict(kernel.system.tlb.items())
        assert entries[vpn].rights == Rights.READ
        with pytest.raises(ProtectionFault):
            touch(kernel, a, vpn, AccessType.WRITE)
        assert check_invariants(kernel) == []

    def test_set_page_rights_retags_resident_entry(self):
        """The page moves to the domain's private group; the resident
        TLB entry must carry the new AID or the old group keeps access."""
        kernel, a, b, segment = self.make()
        vpn = segment.base_vpn
        touch(kernel, a, vpn)
        kernel.set_page_rights(a, vpn, Rights.READ)
        entries = dict(kernel.system.tlb.items())
        assert entries[vpn].aid == kernel.group_table.aid_of(vpn)
        assert entries[vpn].rights == Rights.READ
        # The other domain does not hold the private group.
        with pytest.raises(ProtectionFault) as exc:
            touch(kernel, b, vpn)
        assert exc.value.reason.value == "unattached"
        assert check_invariants(kernel) == []

    def test_revoked_group_rights_deny_write_after_hit(self):
        kernel, a, b, segment = self.make()
        vpn = segment.base_vpn
        touch(kernel, a, vpn, AccessType.WRITE)  # entry resident, RW
        kernel.set_page_rights(a, vpn, Rights.READ)
        with pytest.raises(ProtectionFault) as exc:
            touch(kernel, a, vpn, AccessType.WRITE)
        assert exc.value.reason.value == "denied"


class TestConventionalTLBRights:
    def make(self):
        kernel = Kernel("conventional")
        a = kernel.create_domain("a")
        segment = kernel.create_segment("s", 4)
        kernel.attach(a, segment, Rights.RW)
        return kernel, a, segment

    def test_set_page_rights_rewrites_resident_entry(self):
        kernel, a, segment = self.make()
        vpn = segment.base_vpn
        touch(kernel, a, vpn)  # ASID-TLB entry resident with RW
        kernel.set_page_rights(a, vpn, Rights.READ)
        entries = dict(kernel.system.tlb.items())
        assert entries[(a.pd_id, vpn)].rights == Rights.READ
        with pytest.raises(ProtectionFault):
            touch(kernel, a, vpn, AccessType.WRITE)
        assert check_invariants(kernel) == []

    def test_detach_leaves_no_replica_behind(self):
        kernel, a, segment = self.make()
        vpn = segment.base_vpn
        touch(kernel, a, vpn)
        kernel.detach(a, segment)
        assert not any(
            key[0] == a.pd_id and segment.base_vpn <= key[1] < segment.base_vpn + 4
            for key, _ in kernel.system.tlb.items()
        )
        assert check_invariants(kernel) == []
