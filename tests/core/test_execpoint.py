"""Tests for the execution-point protection extension (Section 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.execpoint import (
    ContextKind,
    ExecContext,
    ExecPointMMU,
    ExecPointPolicyTable,
)
from repro.core.rights import AccessType, Rights

PAGE = 4096
DATA = 0x100 * PAGE
ACCESSOR = 0x200 * PAGE
OTHER_CODE = 0x201 * PAGE


def make_mmu() -> ExecPointMMU:
    return ExecPointMMU(ExecPointPolicyTable())


class TestContextEncoding:
    def test_domain_and_exec_contexts_never_collide(self):
        domain = ExecContext(ContextKind.DOMAIN, 7)
        exec_page = ExecContext(ContextKind.EXEC_PAGE, 7)
        assert domain.encode() != exec_page.encode()

    def test_distinct_idents_distinct_tags(self):
        tags = {ExecContext(ContextKind.EXEC_PAGE, i).encode() for i in range(10)}
        tags |= {ExecContext(ContextKind.DOMAIN, i).encode() for i in range(10)}
        assert len(tags) == 20


class TestDomainPolicy:
    def test_plain_domain_grants(self):
        mmu = make_mmu()
        mmu.policy.grant_domain(0x100, pd_id=1, rights=Rights.RW)
        assert mmu.check(1, ACCESSOR, DATA, AccessType.WRITE)
        assert not mmu.check(2, ACCESSOR, DATA, AccessType.READ)

    def test_pc_irrelevant_under_domain_policy(self):
        mmu = make_mmu()
        mmu.policy.grant_domain(0x100, pd_id=1, rights=Rights.READ)
        assert mmu.check(1, ACCESSOR, DATA, AccessType.READ)
        assert mmu.check(1, OTHER_CODE, DATA, AccessType.READ)


class TestSealedPages:
    """The paper's example: page A accessible only while executing B."""

    def test_access_allowed_only_from_accessor_code(self):
        mmu = make_mmu()
        mmu.policy.seal_to_code(0x100, {0x200: Rights.RW})
        # Any domain, executing from the accessor page: allowed.
        assert mmu.check(1, ACCESSOR, DATA, AccessType.WRITE)
        assert mmu.check(42, ACCESSOR, DATA, AccessType.READ)
        # The same domains, executing from anywhere else: denied.
        assert not mmu.check(1, OTHER_CODE, DATA, AccessType.READ)
        assert not mmu.check(42, OTHER_CODE, DATA, AccessType.READ)

    def test_read_only_gateway(self):
        mmu = make_mmu()
        mmu.policy.seal_to_code(0x100, {0x200: Rights.RW, 0x201: Rights.READ})
        assert mmu.check(1, OTHER_CODE, DATA, AccessType.READ)
        assert not mmu.check(1, OTHER_CODE, DATA, AccessType.WRITE)
        assert mmu.check(1, ACCESSOR, DATA, AccessType.WRITE)

    def test_default_rights_for_unlisted_code(self):
        mmu = make_mmu()
        mmu.policy.seal_to_code(0x100, {0x200: Rights.RW}, default=Rights.READ)
        assert mmu.check(1, OTHER_CODE, DATA, AccessType.READ)
        assert not mmu.check(1, OTHER_CODE, DATA, AccessType.WRITE)

    def test_unsealed_page_inaccessible(self):
        mmu = make_mmu()
        assert not mmu.check(1, ACCESSOR, DATA, AccessType.READ)


class TestCachingBehaviour:
    def test_entries_cached_per_context(self):
        mmu = make_mmu()
        mmu.policy.seal_to_code(0x100, {0x200: Rights.RW})
        mmu.check(1, ACCESSOR, DATA, AccessType.READ)
        refills = mmu.stats["xp.refill"]
        # Same context (exec page), different domain: same cached entry.
        mmu.check(9, ACCESSOR, DATA, AccessType.READ)
        assert mmu.stats["xp.refill"] == refills
        # Different executing page: a new context, a new entry.
        mmu.check(1, OTHER_CODE, DATA, AccessType.READ)
        assert mmu.stats["xp.refill"] == refills + 1

    def test_revoke_purges_all_contexts(self):
        mmu = make_mmu()
        mmu.policy.seal_to_code(0x100, {0x200: Rights.RW, 0x201: Rights.READ})
        mmu.check(1, ACCESSOR, DATA, AccessType.READ)
        mmu.check(1, OTHER_CODE, DATA, AccessType.READ)
        mmu.revoke_page(0x100)
        assert not mmu.check(1, ACCESSOR, DATA, AccessType.READ)
        assert not mmu.check(1, OTHER_CODE, DATA, AccessType.READ)

    def test_denied_accesses_counted(self):
        mmu = make_mmu()
        mmu.policy.seal_to_code(0x100, {0x200: Rights.READ})
        mmu.check(1, ACCESSOR, DATA, AccessType.WRITE)
        assert mmu.stats["xp.denied"] == 1


class TestExecPointProperties:
    @settings(max_examples=50)
    @given(
        accessors=st.dictionaries(
            st.integers(0x300, 0x30F),
            st.sampled_from([Rights.READ, Rights.RW]),
            min_size=1, max_size=4,
        ),
        pc_page=st.integers(0x300, 0x31F),
        pd_id=st.integers(1, 50),
        access=st.sampled_from([AccessType.READ, AccessType.WRITE]),
    )
    def test_sealed_page_decision_matches_policy(
        self, accessors, pc_page, pd_id, access
    ):
        """For any sealed page, the hardware decision equals the policy
        table's grant for the executing page, regardless of domain."""
        mmu = make_mmu()
        mmu.policy.seal_to_code(0x100, accessors)
        allowed = mmu.check(pd_id, pc_page * PAGE, DATA, access)
        expected = accessors.get(pc_page, Rights.NONE).allows(access)
        assert allowed == expected

    @settings(max_examples=30)
    @given(
        checks=st.lists(
            st.tuples(st.integers(1, 5), st.integers(0x300, 0x303)),
            min_size=1, max_size=30,
        )
    )
    def test_cached_entries_per_exec_page_not_per_domain(self, checks):
        """Refills scale with distinct executing pages, not domains."""
        mmu = make_mmu()
        mmu.policy.seal_to_code(0x100, {0x300: Rights.RW})
        for pd_id, pc_page in checks:
            mmu.check(pd_id, pc_page * PAGE, DATA, AccessType.READ)
        distinct_pcs = len({pc for _, pc in checks})
        assert mmu.stats["xp.refill"] <= distinct_pcs
