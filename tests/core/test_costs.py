"""Tests for the bit-cost and cycle-cost models — including the paper's
quantitative hardware claims (Figure 1 widths, the ~25% entry-size
advantage, the ~10% VIVT tag overhead)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.costs import (
    CycleCosts,
    DEFAULT_COSTS,
    cache_line_bits,
    conventional_tlb_entry_bits,
    cycles_breakdown,
    cycles_for,
    entries_for_budget,
    geometric_mean,
    pagegroup_tlb_entry_bits,
    plb_entry_bits,
    plb_size_advantage,
    structure_total_bits,
    translation_tlb_entry_bits,
    vivt_overhead_ratio,
)
from repro.core.params import DEFAULT_PARAMS, MachineParams
from repro.sim.stats import Stats


class TestEntrySizes:
    def test_figure1_plb_entry_fields(self):
        """52 + 16 + 3 bits plus one valid bit (Figure 1)."""
        assert plb_entry_bits() == 52 + 16 + 3 + 1

    def test_translation_only_entry(self):
        # 52 VPN tag + 24 PFN + 2 status + valid
        assert translation_tlb_entry_bits() == 52 + 24 + 2 + 1

    def test_pagegroup_entry_adds_aid_and_rights(self):
        assert pagegroup_tlb_entry_bits() == 52 + 24 + 3 + 16 + 2 + 1

    def test_conventional_entry_adds_asid(self):
        assert conventional_tlb_entry_bits() == 52 + 16 + 24 + 3 + 2 + 1

    def test_paper_claim_plb_25pct_smaller(self):
        """Section 4: PLB entries about 25% smaller than page-group TLB
        entries (they carry no translation)."""
        advantage = plb_size_advantage()
        assert 0.20 <= advantage <= 0.30

    def test_set_indexing_shrinks_tags(self):
        full = plb_entry_bits(n_sets=1)
        indexed = plb_entry_bits(n_sets=16)
        assert full - indexed == 4

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            plb_entry_bits(n_sets=3)

    def test_budget_entries(self):
        entry = plb_entry_bits()
        assert entries_for_budget(entry, entry * 10) == 10
        assert entries_for_budget(entry, entry * 10 + 5) == 10

    def test_structure_total(self):
        assert structure_total_bits(72, 128) == 72 * 128

    def test_equal_silicon_buys_more_plb_entries(self):
        """The fair-comparison remark: smaller entries -> more of them."""
        budget = pagegroup_tlb_entry_bits() * 128
        assert entries_for_budget(plb_entry_bits(), budget) > 128


class TestCacheTagOverhead:
    def test_paper_claim_vivt_10pct_larger(self):
        """Section 3.2.1: 64-bit VAs, 36-bit PAs, 32-byte lines ->
        a virtually tagged cache is about 10% larger."""
        ratio = vivt_overhead_ratio(cache_bytes=16 * 1024, ways=1)
        assert 1.07 <= ratio <= 1.13

    def test_overhead_shrinks_with_smaller_va(self):
        small_va = MachineParams(va_bits=40)
        assert vivt_overhead_ratio(small_va) < vivt_overhead_ratio()

    def test_asid_tagging_costs_more(self):
        """The conventional homonym fix widens tags further (§2.2)."""
        plain = vivt_overhead_ratio()
        tagged = vivt_overhead_ratio(asid_tagged=True)
        assert tagged > plain

    def test_line_bits_components(self):
        # Direct-mapped 16K cache: 512 lines/sets; VIVT tag = 64-5-9=50.
        bits = cache_line_bits(virtually_tagged=True, n_sets=512)
        assert bits == 32 * 8 + 50 + 2

    def test_physical_tag_smaller(self):
        vivt = cache_line_bits(virtually_tagged=True, n_sets=512)
        vipt = cache_line_bits(virtually_tagged=False, n_sets=512)
        assert vivt - vipt == DEFAULT_PARAMS.va_bits - DEFAULT_PARAMS.pa_bits


class TestCycleModel:
    def test_weight_lookup_by_suffix(self):
        costs = CycleCosts()
        assert costs.weight_for("dcache.hit") == costs.cache_hit
        assert costs.weight_for("sys.dcache.hit") == costs.cache_hit
        assert costs.weight_for("unknown.counter") == 0

    def test_cycles_for_weighted_sum(self):
        stats = Stats({"dcache.hit": 10, "kernel.trap": 2, "unpriced": 99})
        expected = 10 * DEFAULT_COSTS.cache_hit + 2 * DEFAULT_COSTS.kernel_trap
        assert cycles_for(stats) == expected

    def test_breakdown_only_nonzero(self):
        stats = Stats({"dcache.hit": 1, "unpriced": 5})
        breakdown = cycles_breakdown(stats)
        assert breakdown == {"dcache.hit": DEFAULT_COSTS.cache_hit}

    def test_custom_costs(self):
        costs = CycleCosts(kernel_trap=1000)
        stats = Stats({"kernel.trap": 1})
        assert cycles_for(stats, costs) == 1000

    @given(st.dictionaries(
        st.sampled_from(["dcache.hit", "dcache.miss", "plb.fill", "kernel.trap"]),
        st.integers(0, 500),
    ))
    def test_cycles_monotone_in_counts(self, counts):
        stats = Stats(counts)
        bigger = Stats(counts)
        bigger.inc("kernel.trap", 1)
        assert cycles_for(bigger) >= cycles_for(stats)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
