"""Tests for the two-level cache organization (§3.2.1's L2+TLB design)."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.os.kernel import Kernel
from repro.sim.machine import Machine

L1 = 2 * 1024
L2 = 32 * 1024


def make(l2_bytes=L2):
    kernel = Kernel(
        "plb",
        system_options={"cache_bytes": L1, "l2_cache_bytes": l2_bytes},
    )
    machine = Machine(kernel)
    domain = kernel.create_domain("d")
    segment = kernel.create_segment("s", 16)
    kernel.attach(domain, segment, Rights.RW)
    return kernel, machine, domain, segment


class TestHierarchy:
    def test_l1_misses_fetch_through_l2(self):
        kernel, machine, domain, segment = make()
        base = kernel.params.vaddr(segment.base_vpn)
        for offset in range(0, 4096, 32):
            machine.read(domain, base + offset)
        assert kernel.stats["l2cache.miss"] > 0
        assert kernel.stats["l2cache.fill"] == kernel.stats["dcache.miss"]

    def test_l2_absorbs_l1_conflict_misses(self):
        """Lines evicted from the small L1 hit in the L2 on return."""
        kernel, machine, domain, segment = make()
        base = kernel.params.vaddr(segment.base_vpn)
        # Touch a footprint larger than L1 but smaller than L2, twice.
        footprint = 4 * L1
        for repeat in range(2):
            for offset in range(0, footprint, 32):
                machine.read(domain, base + offset)
        # Second pass misses L1 (capacity) but hits L2.
        assert kernel.stats["l2cache.hit"] > 0

    def test_dirty_victims_write_into_l2(self):
        kernel, machine, domain, segment = make()
        base = kernel.params.vaddr(segment.base_vpn)
        footprint = 4 * L1
        for offset in range(0, footprint, 32):
            machine.write(domain, base + offset)
        assert kernel.stats["dcache.writeback"] > 0
        # Each writeback became an L2 access (write-allocate).
        assert kernel.stats["l2cache.fill"] >= kernel.stats["dcache.writeback"]

    def test_translation_counted_once_per_l1_miss(self):
        """The L2 fetch reuses the TLB resolution from the L1 miss."""
        kernel, machine, domain, segment = make()
        base = kernel.params.vaddr(segment.base_vpn)
        machine.read(domain, base)
        assert kernel.stats["tlb.off_chip_access"] == 1

    def test_no_l2_by_default(self):
        kernel = Kernel("plb")
        from repro.core.mmu import PLBSystem

        assert isinstance(kernel.system, PLBSystem)
        assert kernel.system.l2 is None
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 2)
        kernel.attach(domain, segment, Rights.RW)
        Machine(kernel).read(domain, kernel.params.vaddr(segment.base_vpn))
        assert kernel.stats.total("l2cache") == 0


class TestFetchBeforeVictimOrder:
    """Regression: the demand fetch must probe the L2 before the dirty
    victim installs.  With the order reversed, a victim mapping to the
    same L2 set can (a) spuriously hit on its own just-written line and
    (b) evict the very line about to be fetched — both visible in the
    L2 hit counter under a conflict-heavy micro-configuration.
    """

    def make_micro(self):
        from repro.core.mmu import PLBSystem, ProtectionInfo, TranslationInfo
        from repro.core.rights import AccessType

        class Identity:
            def rights_for(self, pd_id, vpn):
                return ProtectionInfo(rights=Rights.RW)

            def translation_for(self, vpn):
                return TranslationInfo(pfn=vpn)

        identity = Identity()
        # 2-set direct-mapped L1 over a 2-set direct-mapped L2: lines
        # 0x0 and 0x40 collide in both.
        system = PLBSystem(
            identity, identity,
            cache_bytes=64, cache_ways=1,
            l2_cache_bytes=64, l2_cache_ways=1,
        )
        return system, AccessType

    def test_conflicting_victim_does_not_hit_own_line(self):
        system, AccessType = self.make_micro()
        system.access(0x00, AccessType.WRITE)   # L2 miss, fills line 0
        # Line 0x40 evicts dirty line 0x0 from L1.  Fetch-first: the
        # fetch misses (L2 holds 0x0), fills, and the victim's write
        # then misses too.  Victim-first would count a bogus L2 hit on
        # the line the victim itself just wrote.
        system.access(0x40, AccessType.WRITE)
        assert system.stats["l2cache.hit"] == 0
        # Reading 0x0 back evicts dirty 0x40.  The victim writeback of
        # step 2 left line 0x0 resident, so the fetch hits exactly once.
        system.access(0x00, AccessType.READ)
        assert system.stats["l2cache.hit"] == 1
        assert system.stats["l2cache.miss"] == 4
