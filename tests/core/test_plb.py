"""Unit and property tests for the Protection Lookaside Buffer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import MachineParams
from repro.core.plb import ProtectionLookasideBuffer
from repro.core.rights import Rights

PAGE = 4096


def vaddr(vpn: int, offset: int = 0) -> int:
    return (vpn << 12) | offset


class TestBasicOperation:
    def test_miss_then_fill_then_hit(self):
        plb = ProtectionLookasideBuffer(8)
        assert plb.lookup(1, vaddr(5)) is None
        plb.fill(1, vaddr(5), Rights.RW)
        assert plb.lookup(1, vaddr(5)) == Rights.RW
        assert plb.stats["plb.miss"] == 1
        assert plb.stats["plb.hit"] == 1

    def test_entries_are_per_domain(self):
        """Two domains sharing a page need two PLB entries (§3.2.1)."""
        plb = ProtectionLookasideBuffer(8)
        plb.fill(1, vaddr(5), Rights.RW)
        plb.fill(2, vaddr(5), Rights.READ)
        assert plb.lookup(1, vaddr(5)) == Rights.RW
        assert plb.lookup(2, vaddr(5)) == Rights.READ
        assert plb.entries_for_page(5) == 2

    def test_same_page_different_offsets_one_entry(self):
        plb = ProtectionLookasideBuffer(8)
        plb.fill(1, vaddr(5, 100), Rights.READ)
        assert plb.lookup(1, vaddr(5, 3000)) == Rights.READ
        assert len(plb) == 1

    def test_rejects_empty_levels(self):
        with pytest.raises(ValueError):
            ProtectionLookasideBuffer(8, levels=())

    def test_rejects_subbyte_level(self):
        with pytest.raises(ValueError):
            ProtectionLookasideBuffer(8, levels=(-13,))

    def test_fill_at_unconfigured_level(self):
        plb = ProtectionLookasideBuffer(8)
        with pytest.raises(ValueError):
            plb.fill(1, vaddr(0), Rights.READ, level=2)


class TestUpdateRights:
    def test_update_resident_entry_in_place(self):
        plb = ProtectionLookasideBuffer(8)
        plb.fill(1, vaddr(5), Rights.READ)
        assert plb.update_rights(1, vaddr(5), Rights.RW)
        assert plb.lookup(1, vaddr(5)) == Rights.RW
        assert plb.stats["plb.update"] == 1

    def test_update_missing_entry_is_noop(self):
        plb = ProtectionLookasideBuffer(8)
        assert not plb.update_rights(1, vaddr(5), Rights.RW)

    def test_update_does_not_affect_other_domains(self):
        plb = ProtectionLookasideBuffer(8)
        plb.fill(1, vaddr(5), Rights.READ)
        plb.fill(2, vaddr(5), Rights.READ)
        plb.update_rights(1, vaddr(5), Rights.NONE)
        assert plb.lookup(2, vaddr(5)) == Rights.READ

    def test_update_entries_for_page_all_domains(self):
        plb = ProtectionLookasideBuffer(8)
        for pd in (1, 2, 3):
            plb.fill(pd, vaddr(5), Rights.RW)
        plb.fill(1, vaddr(6), Rights.RW)
        inspected, changed = plb.update_entries_for_page(5, Rights.NONE)
        assert inspected == 4
        assert changed == 3
        for pd in (1, 2, 3):
            assert plb.resident(pd, vaddr(5)) == Rights.NONE
        assert plb.resident(1, vaddr(6)) == Rights.RW

    def test_update_entries_for_page_single_domain(self):
        plb = ProtectionLookasideBuffer(8)
        plb.fill(1, vaddr(5), Rights.RW)
        plb.fill(2, vaddr(5), Rights.RW)
        _, changed = plb.update_entries_for_page(5, Rights.NONE, pd_id=1)
        assert changed == 1
        assert plb.resident(2, vaddr(5)) == Rights.RW


class TestPurges:
    def test_purge_domain_range_is_a_sweep(self):
        """Detach inspects every entry (Table 1's detach cost)."""
        plb = ProtectionLookasideBuffer(16)
        for vpn in range(4):
            plb.fill(1, vaddr(vpn), Rights.RW)
            plb.fill(2, vaddr(vpn), Rights.RW)
        inspected, removed = plb.purge_domain_range(1, 0, 2)
        assert inspected == 8  # every resident entry inspected
        assert removed == 2  # only domain 1's pages 0..1
        assert plb.resident(1, vaddr(0)) is None
        assert plb.resident(2, vaddr(0)) == Rights.RW
        assert plb.resident(1, vaddr(2)) == Rights.RW

    def test_purge_page_removes_all_domains(self):
        plb = ProtectionLookasideBuffer(8)
        plb.fill(1, vaddr(5), Rights.RW)
        plb.fill(2, vaddr(5), Rights.READ)
        _, removed = plb.purge_page(5)
        assert removed == 2
        assert plb.entries_for_page(5) == 0

    def test_purge_all(self):
        plb = ProtectionLookasideBuffer(8)
        for vpn in range(5):
            plb.fill(1, vaddr(vpn), Rights.RW)
        assert plb.purge_all() == 5
        assert len(plb) == 0

    def test_sweep_domain_range_rewrites(self):
        plb = ProtectionLookasideBuffer(8)
        for vpn in range(4):
            plb.fill(1, vaddr(vpn), Rights.RW)
        inspected, changed = plb.sweep_domain_range(1, 1, 3, Rights.READ)
        assert inspected == 4
        assert changed == 2
        assert plb.resident(1, vaddr(0)) == Rights.RW
        assert plb.resident(1, vaddr(1)) == Rights.READ
        assert plb.resident(1, vaddr(2)) == Rights.READ
        assert plb.resident(1, vaddr(3)) == Rights.RW


class TestReplacement:
    def test_lru_eviction(self):
        plb = ProtectionLookasideBuffer(2)
        plb.fill(1, vaddr(0), Rights.READ)
        plb.fill(1, vaddr(1), Rights.READ)
        plb.lookup(1, vaddr(0))  # promote page 0
        plb.fill(1, vaddr(2), Rights.READ)
        assert plb.resident(1, vaddr(1)) is None
        assert plb.resident(1, vaddr(0)) == Rights.READ

    def test_capacity(self):
        plb = ProtectionLookasideBuffer(4)
        for vpn in range(10):
            plb.fill(1, vaddr(vpn), Rights.READ)
        assert len(plb) == 4
        assert plb.occupancy == 1.0


class TestSuperpageProtection:
    """Section 4.3: protection units larger than a translation page."""

    def test_one_entry_covers_aligned_superpage(self):
        plb = ProtectionLookasideBuffer(8, levels=(2, 0))
        plb.fill(1, vaddr(4), Rights.RW, level=2)  # pages 4..7
        for vpn in range(4, 8):
            assert plb.lookup(1, vaddr(vpn)) == Rights.RW
        assert len(plb) == 1
        assert plb.lookup(1, vaddr(8)) is None

    def test_superpage_alignment(self):
        plb = ProtectionLookasideBuffer(8, levels=(2, 0))
        plb.fill(1, vaddr(5), Rights.RW, level=2)  # unit = pages 4..7
        assert plb.lookup(1, vaddr(4)) == Rights.RW

    def test_purge_range_overlapping_superpage(self):
        plb = ProtectionLookasideBuffer(8, levels=(2, 0))
        plb.fill(1, vaddr(4), Rights.RW, level=2)
        _, removed = plb.purge_domain_range(1, 6, 7)  # overlaps the unit
        assert removed == 1
        assert plb.lookup(1, vaddr(4)) is None

    def test_page_entry_preferred_when_both_resident(self):
        """Lookup probes coarser levels first, then finer (config order)."""
        plb = ProtectionLookasideBuffer(8, levels=(2, 0))
        plb.fill(1, vaddr(4), Rights.READ, level=2)
        plb.fill(1, vaddr(5), Rights.RW, level=0)
        # The superpage entry answers first (levels probed descending).
        assert plb.lookup(1, vaddr(5)) == Rights.READ

    def test_unit_span(self):
        plb = ProtectionLookasideBuffer(8, levels=(3, 0, -5))
        assert plb.unit_span_pages(3) == 8
        assert plb.unit_span_pages(0) == 1
        assert plb.unit_span_pages(-5) == 1


class TestSubpageProtection:
    """Section 4.3: protection units smaller than a page (801 locks)."""

    def test_subpage_units_are_independent(self):
        # -5 => 4096/32 = 128-byte units, the IBM 801 lock granularity.
        plb = ProtectionLookasideBuffer(16, levels=(-5,))
        plb.fill(1, vaddr(0, 0), Rights.RW, level=-5)
        assert plb.lookup(1, vaddr(0, 64)) == Rights.RW  # same 128B unit
        assert plb.lookup(1, vaddr(0, 128)) is None  # next unit

    def test_subpage_purge_page_sweeps_all_units(self):
        plb = ProtectionLookasideBuffer(64, levels=(-5,))
        for unit in range(4):
            plb.fill(1, vaddr(0, unit * 128), Rights.RW, level=-5)
        plb.fill(1, vaddr(1, 0), Rights.RW, level=-5)
        _, removed = plb.purge_page(0)
        assert removed == 4
        assert plb.lookup(1, vaddr(1, 0)) == Rights.RW


class TestPLBProperties:
    @settings(max_examples=50)
    @given(
        fills=st.lists(
            st.tuples(st.integers(1, 3), st.integers(0, 15),
                      st.sampled_from([Rights.READ, Rights.RW, Rights.NONE])),
            min_size=1, max_size=60,
        )
    )
    def test_resident_rights_always_match_last_fill(self, fills):
        plb = ProtectionLookasideBuffer(64)
        latest: dict[tuple[int, int], Rights] = {}
        for pd, vpn, rights in fills:
            plb.fill(pd, vaddr(vpn), rights)
            latest[(pd, vpn)] = rights
        for (pd, vpn), rights in latest.items():
            assert plb.resident(pd, vaddr(vpn)) == rights

    @settings(max_examples=50)
    @given(
        fills=st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 20)),
            min_size=1, max_size=80,
        ),
        capacity=st.sampled_from([2, 4, 8]),
    )
    def test_capacity_respected(self, fills, capacity):
        plb = ProtectionLookasideBuffer(capacity)
        for pd, vpn in fills:
            plb.fill(pd, vaddr(vpn), Rights.READ)
        assert len(plb) <= capacity

    @settings(max_examples=50)
    @given(
        pds=st.lists(st.integers(1, 5), min_size=1, max_size=5, unique=True),
        vpn=st.integers(0, 100),
    )
    def test_replication_count_equals_sharing_domains(self, pds, vpn):
        """PLB replication grows with sharing (§3.2.1 / Table 1)."""
        plb = ProtectionLookasideBuffer(32)
        for pd in pds:
            plb.fill(pd, vaddr(vpn), Rights.READ)
        assert plb.entries_for_page(vpn) == len(pds)


class TestPageUpdateWithMixedLevels:
    def test_superpage_entry_purged_not_rewritten(self):
        """A per-page rights change cannot speak for a whole superpage
        entry: the covering entry must go, not be rewritten."""
        plb = ProtectionLookasideBuffer(8, levels=(2, 0))
        plb.fill(1, vaddr(4), Rights.RW, level=2)  # covers pages 4..7
        _, changed = plb.update_entries_for_page(5, Rights.NONE)
        assert changed == 1
        # The superpage entry is gone entirely...
        assert plb.resident(1, vaddr(4)) is None
        assert plb.resident(1, vaddr(6)) is None

    def test_page_level_entries_still_rewritten(self):
        plb = ProtectionLookasideBuffer(8, levels=(2, 0))
        plb.fill(1, vaddr(5), Rights.RW, level=0)
        _, changed = plb.update_entries_for_page(5, Rights.NONE)
        assert changed == 1
        assert plb.resident(1, vaddr(5)) == Rights.NONE


class TestDomainEntryCount:
    def test_entries_for_domain(self):
        plb = ProtectionLookasideBuffer(16)
        for vpn in range(3):
            plb.fill(1, vaddr(vpn), Rights.READ)
        plb.fill(2, vaddr(0), Rights.READ)
        assert plb.entries_for_domain(1) == 3
        assert plb.entries_for_domain(2) == 1
        assert plb.entries_for_domain(3) == 0


class TestMultiLevelSweep:
    """Regression: invalidate/update_rights must visit EVERY level.

    A domain can legitimately hold a page-level and a superpage-level
    entry covering the same address; stopping at the first level that
    hits leaves the sibling granting stale (possibly revoked) rights.
    """

    def make_both_levels(self) -> ProtectionLookasideBuffer:
        plb = ProtectionLookasideBuffer(8, levels=(2, 0))
        plb.fill(1, vaddr(4), Rights.RW, level=2)  # covers pages 4..7
        plb.fill(1, vaddr(4), Rights.RW, level=0)
        return plb

    def test_invalidate_sweeps_all_levels(self):
        plb = self.make_both_levels()
        assert plb.invalidate(1, vaddr(4)) == 2
        assert plb.resident(1, vaddr(4)) is None
        assert plb.stats["plb.invalidate"] == 2

    def test_update_rights_sweeps_all_levels(self):
        plb = self.make_both_levels()
        assert plb.update_rights(1, vaddr(4), Rights.READ) == 2
        rights = [entry.rights for key, entry in plb.items() if key.pd_id == 1]
        assert rights == [Rights.READ, Rights.READ]

    def test_counts_zero_when_nothing_resident(self):
        plb = ProtectionLookasideBuffer(8, levels=(2, 0))
        assert plb.invalidate(1, vaddr(4)) == 0
        assert plb.update_rights(1, vaddr(4), Rights.READ) == 0

    def test_single_level_unaffected(self):
        plb = ProtectionLookasideBuffer(8, levels=(2, 0))
        plb.fill(1, vaddr(4), Rights.RW, level=2)
        assert plb.invalidate(1, vaddr(4)) == 1
        assert plb.resident(1, vaddr(4)) is None
