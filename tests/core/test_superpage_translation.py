"""Tests for multiple translation page sizes (§4.3 / Talluri et al.)."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.hardware.memory import OutOfMemoryError, PhysicalMemory
from repro.hardware.tlb import TranslationTLB
from repro.os.kernel import Kernel, KernelError
from repro.sim.machine import Machine


class TestContiguousAllocation:
    def test_frames_contiguous_and_distinct(self):
        memory = PhysicalMemory(32)
        frames = memory.allocate_contiguous(8)
        pfns = [frame.pfn for frame in frames]
        assert pfns == list(range(pfns[0], pfns[0] + 8))

    def test_alignment_honored(self):
        memory = PhysicalMemory(64)
        memory.allocate()  # disturb the free list
        frames = memory.allocate_contiguous(16, align=16)
        assert frames[0].pfn % 16 == 0

    def test_fragmentation_detected(self):
        memory = PhysicalMemory(8)
        held = [memory.allocate() for _ in range(8)]
        # Free alternating frames: max run is 1.
        for frame in held[::2]:
            memory.release(frame.pfn)
        with pytest.raises(OutOfMemoryError):
            memory.allocate_contiguous(2)

    def test_interacts_with_single_allocation(self):
        memory = PhysicalMemory(16)
        run = memory.allocate_contiguous(4)
        single = memory.allocate()
        assert single.pfn not in {frame.pfn for frame in run}

    def test_validation(self):
        memory = PhysicalMemory(8)
        with pytest.raises(ValueError):
            memory.allocate_contiguous(0)
        with pytest.raises(ValueError):
            memory.allocate_contiguous(2, align=3)


class TestMultiSizeTLB:
    def test_superpage_entry_covers_unit(self):
        tlb = TranslationTLB(8, levels=(4, 0))
        tlb.fill(0x100, 0x40, level=4)  # pages 0x100..0x10f -> 0x40..0x4f
        for offset in range(16):
            entry = tlb.lookup(0x100 + offset)
            assert entry is not None
            assert entry.pfn_for(0x100 + offset) == 0x40 + offset
        assert len(tlb) == 1
        assert tlb.lookup(0x110) is None

    def test_reach(self):
        tlb = TranslationTLB(8, levels=(4, 0))
        tlb.fill(0x100, 0x40, level=4)
        tlb.fill(0x200, 0x90, level=0)
        assert tlb.reach_pages() == 17

    def test_hit_miss_counted_once_per_lookup(self):
        tlb = TranslationTLB(8, levels=(4, 0))
        tlb.lookup(0x100)
        assert tlb.stats["tlb.miss"] == 1
        tlb.fill(0x100, 0x40, level=4)
        tlb.lookup(0x105)
        assert tlb.stats["tlb.hit"] == 1

    def test_invalidate_probes_levels(self):
        tlb = TranslationTLB(8, levels=(4, 0))
        tlb.fill(0x100, 0x40, level=4)
        assert tlb.invalidate(0x107)  # any covered page kills the entry
        assert tlb.lookup(0x100) is None

    def test_fill_requires_configured_level(self):
        tlb = TranslationTLB(8)
        with pytest.raises(ValueError):
            tlb.fill(0x100, 0x40, level=4)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            TranslationTLB(8, levels=())
        with pytest.raises(ValueError):
            TranslationTLB(8, levels=(-1,))


class TestKernelSuperpageTranslation:
    def make(self, tlb_levels=(4, 0)):
        kernel = Kernel("plb", system_options={"tlb_levels": tlb_levels,
                                               "tlb_entries": 8})
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("big", 16, contiguous=True)
        kernel.attach(domain, segment, Rights.RW)
        return kernel, machine, domain, segment

    def test_one_tlb_entry_for_whole_segment(self):
        kernel, machine, domain, segment = self.make()
        for vpn in segment.vpns():
            machine.write(domain, kernel.params.vaddr(vpn))
        assert kernel.stats["tlb.fill"] == 1
        assert kernel.system.tlb.reach_pages() == 16

    def test_data_lands_in_correct_frames(self):
        kernel, machine, domain, segment = self.make()
        base_pfn = kernel._contiguous[segment.seg_id]
        for index, vpn in enumerate(segment.vpns()):
            assert kernel.translations.pfn_for(vpn) == base_pfn + index

    def test_per_page_without_contiguous(self):
        kernel = Kernel("plb", system_options={"tlb_levels": (4, 0)})
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("plain", 16)
        kernel.attach(domain, segment, Rights.RW)
        for vpn in segment.vpns():
            machine.read(domain, kernel.params.vaddr(vpn))
        assert kernel.stats["tlb.fill"] == 16

    def test_unmap_demotes_to_per_page(self):
        kernel, machine, domain, segment = self.make()
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        kernel.free_page(segment.vpn_at(3))
        assert segment.seg_id not in kernel._contiguous
        # Remaining pages refill as per-page entries.
        machine.read(domain, kernel.params.vaddr(segment.vpn_at(5)))
        entry = kernel.system.tlb.lookup(segment.vpn_at(5))
        assert entry is not None and entry.level == 0

    def test_non_power_of_two_rejected(self):
        kernel = Kernel("plb")
        with pytest.raises(KernelError):
            kernel.create_segment("odd", 12, contiguous=True)

    def test_unsupported_level_falls_back(self):
        """A TLB without level 4 gets per-page translations."""
        kernel = Kernel("plb", system_options={"tlb_levels": (0,)})
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("big", 16, contiguous=True)
        kernel.attach(domain, segment, Rights.RW)
        for vpn in segment.vpns():
            machine.read(domain, kernel.params.vaddr(vpn))
        assert kernel.stats["tlb.fill"] == 16
