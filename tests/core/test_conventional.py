"""Unit tests for the conventional linear-page-table space model (§3.1)."""

from __future__ import annotations

from repro.core.conventional import LinearPageTable, duplication_report
from repro.core.rights import Rights


class TestLinearPageTable:
    def test_map_lookup_unmap(self):
        table = LinearPageTable()
        table.map(10, 100, Rights.RW)
        entry = table.lookup(10)
        assert entry is not None and entry.pfn == 100
        assert table.unmap(10)
        assert table.lookup(10) is None
        assert not table.unmap(10)

    def test_set_rights(self):
        table = LinearPageTable()
        table.map(10, 100, Rights.RW)
        assert table.set_rights(10, Rights.READ)
        assert table.lookup(10).rights == Rights.READ
        assert not table.set_rights(11, Rights.READ)

    def test_span_measures_sparsity_cost(self):
        """Scattered mappings make linear tables huge (§3.1)."""
        table = LinearPageTable()
        table.map(0x100, 1, Rights.RW)
        table.map(0x100000, 2, Rights.RW)
        assert table.mapped_entries == 2
        assert table.span_entries == 0x100000 - 0x100 + 1

    def test_empty_table_spans_nothing(self):
        table = LinearPageTable()
        assert table.span_entries == 0
        assert table.table_bits() == 0

    def test_table_bits_uses_default_pte_width(self):
        table = LinearPageTable()
        table.map(0, 0, Rights.RW)
        # pfn(24) + rights(3) + status(2) + valid(1) = 30 bits per PTE
        assert table.table_bits() == 30
        assert table.table_bits(pte_bits=64) == 64

    def test_contiguous_span_equals_mapped(self):
        table = LinearPageTable()
        for vpn in range(5):
            table.map(vpn, vpn, Rights.RW)
        assert table.span_entries == table.mapped_entries == 5


class TestDuplicationReport:
    def test_no_sharing_no_duplication(self):
        a = LinearPageTable()
        b = LinearPageTable()
        a.map(1, 10, Rights.RW)
        b.map(2, 11, Rights.RW)
        report = duplication_report({1: a, 2: b})
        assert report["total_entries"] == 2
        assert report["unique_pages"] == 2
        assert report["duplicated_entries"] == 0

    def test_shared_pages_duplicate(self):
        """Shared pages replicate PTEs in every domain's table (§3.1)."""
        tables = {}
        for pd in range(4):
            table = LinearPageTable()
            for vpn in range(8):
                table.map(vpn, vpn, Rights.RW)
            tables[pd] = table
        report = duplication_report(tables)
        assert report["total_entries"] == 32
        assert report["unique_pages"] == 8
        assert report["duplicated_entries"] == 24

    def test_empty(self):
        report = duplication_report({})
        assert report == {
            "total_entries": 0,
            "unique_pages": 0,
            "duplicated_entries": 0,
        }
