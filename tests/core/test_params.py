"""Unit tests for machine parameters and address arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.params import DEFAULT_PARAMS, MachineParams


class TestDefaults:
    def test_paper_figure1_defaults(self):
        """The defaults must reproduce Figure 1's assumptions."""
        p = DEFAULT_PARAMS
        assert p.va_bits == 64
        assert p.pa_bits == 36
        assert p.page_size == 4096
        assert p.vpn_bits == 52  # Figure 1: 52-bit VPN field
        assert p.pd_id_bits == 16  # Figure 1: 16-bit PD-ID field
        assert p.rights_bits == 3  # Figure 1: 3-bit rights field
        assert p.cache_line_bytes == 32  # Section 3.2.1's 10% example

    def test_derived_widths(self):
        p = DEFAULT_PARAMS
        assert p.pfn_bits == 24  # 36 - 12
        assert p.line_offset_bits == 5  # 32-byte lines


class TestValidation:
    def test_rejects_page_larger_than_va(self):
        with pytest.raises(ValueError):
            MachineParams(va_bits=16, page_bits=16)

    def test_rejects_pa_wider_than_va(self):
        with pytest.raises(ValueError):
            MachineParams(va_bits=32, pa_bits=40)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            MachineParams(cache_line_bytes=24)

    def test_rejects_zero_line(self):
        with pytest.raises(ValueError):
            MachineParams(cache_line_bytes=0)


class TestAddressArithmetic:
    def test_vpn_extraction(self):
        p = DEFAULT_PARAMS
        assert p.vpn(0) == 0
        assert p.vpn(4095) == 0
        assert p.vpn(4096) == 1
        assert p.vpn(0x123456789) == 0x123456789 >> 12

    def test_page_offset(self):
        p = DEFAULT_PARAMS
        assert p.page_offset(4096) == 0
        assert p.page_offset(4097) == 1
        assert p.page_offset(4095) == 4095

    def test_vaddr_composition(self):
        p = DEFAULT_PARAMS
        assert p.vaddr(1) == 4096
        assert p.vaddr(2, 100) == 8292

    @given(st.integers(0, (1 << 64) - 1))
    def test_vpn_offset_roundtrip(self, vaddr):
        p = DEFAULT_PARAMS
        assert p.vaddr(p.vpn(vaddr), p.page_offset(vaddr)) == vaddr

    @given(st.integers(0, (1 << 52) - 1), st.integers(0, 4095))
    def test_compose_decompose(self, vpn, offset):
        p = DEFAULT_PARAMS
        vaddr = p.vaddr(vpn, offset)
        assert p.vpn(vaddr) == vpn
        assert p.page_offset(vaddr) == offset


class TestAlternativeGeometries:
    def test_larger_pages_shrink_vpn(self):
        p = MachineParams(page_bits=14)  # 16K pages
        assert p.vpn_bits == 50
        assert p.page_size == 16384

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_PARAMS.va_bits = 32  # type: ignore[misc]
