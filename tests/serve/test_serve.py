"""Serve-mode integration: determinism, schema, chaos, divergence."""

from __future__ import annotations

import io
import json

import pytest

from repro.serve.driver import DEFAULT_RATES, ServeConfig, run_serve
from repro.serve.exporters import render_prometheus
from repro.workloads.openloop import ArrivalProcess, arrival_schedule


def _run(**overrides):
    config = ServeConfig(
        duration_ms=overrides.pop("duration_ms", 150),
        seed=overrides.pop("seed", 7),
        models=overrides.pop("models", ("plb",)),
        plan=overrides.pop("plan", "mixed"),
        **overrides,
    )
    buf = io.StringIO()
    result = run_serve(config, jsonl_fp=buf)
    return buf.getvalue(), result


class TestArrivals:
    def test_arrival_process_is_seeded_and_monotonic(self):
        a = [ArrivalProcess("rpc", 100.0, 7).next_arrival_us() for _ in range(1)]
        b = ArrivalProcess("rpc", 100.0, 7)
        assert b.next_arrival_us() == a[0]
        times = [b.next_arrival_us() for _ in range(50)]
        assert times == sorted(times)

    def test_schedule_merges_classes_deterministically(self):
        rates = {"rpc": 100.0, "txn": 50.0}
        first = list(arrival_schedule(rates, 3, 100_000))
        second = list(arrival_schedule(rates, 3, 100_000))
        assert first == second
        assert all(t < 100_000 for t, _ in first)
        assert {name for _, name in first} == {"rpc", "txn"}


class TestDeterminism:
    def test_same_seed_same_jsonl_and_summary(self):
        stream_a, result_a = _run()
        stream_b, result_b = _run()
        assert stream_a == stream_b
        assert result_a.summaries == result_b.summaries

    def test_multi_cpu_runs_are_deterministic(self):
        stream_a, result_a = _run(cpus=2)
        stream_b, result_b = _run(cpus=2)
        assert stream_a == stream_b
        assert result_a.summaries == result_b.summaries

    def test_different_seeds_differ(self):
        stream_a, _ = _run(seed=7)
        stream_b, _ = _run(seed=8)
        assert stream_a != stream_b


class TestSnapshotSchema:
    def test_jsonl_snapshots_carry_the_slo_surface(self):
        stream, _ = _run()
        lines = [json.loads(line) for line in stream.splitlines()]
        assert lines
        for snap in lines:
            assert {
                "t_us", "model", "seq", "requests", "refs", "rates",
                "latency_cycles", "faults", "recovery_time_us", "events",
            } <= set(snap)
        final = lines[-1]
        assert final["t_us"] == 150_000
        for sketch in final["latency_cycles"]["per_class"].values():
            assert {"count", "p50", "p99", "p999"} <= set(sketch)

    def test_summary_reports_all_slo_fields(self):
        _, result = _run()
        summary = result.summaries["plb"]
        assert summary["requests"] > 0
        assert summary["sustained_refs_per_sec"] > 0
        assert "latency_cycles_per_verb" in summary
        verbs = summary["latency_cycles_per_verb"]
        assert any(name.startswith("kernel.") for name in verbs)
        assert {"injected", "recovered", "request_failures"} <= set(
            summary["faults"]
        )


class TestChaos:
    def test_mixed_preset_injects_and_recovers(self):
        _, result = _run(duration_ms=300)
        faults = result.summaries["plb"]["faults"]
        assert faults["injected"] > 0
        assert faults["recovered"] > 0
        assert not result.diverged

    def test_unrecoverable_authority_corruption_diverges(self):
        # Seed 2 lands the corruption on a hot RW attachment of the
        # rpc-only mix; every retry re-fails because scrub repairs caches
        # *from* the corrupted authority.
        _, result = _run(
            duration_ms=400,
            seed=2,
            plan="unrecoverable",
            rates={"rpc": 150.0},
        )
        assert result.diverged
        assert result.unrecovered["plb"] > 0
        assert result.summaries["plb"]["faults"]["request_failures"] > 0

    def test_no_plan_means_no_injections(self):
        _, result = _run(plan=None)
        assert result.summaries["plb"]["faults"]["injected"] == 0


class TestTelemetryRegressions:
    """Pins for the two PR-7 telemetry fixes.

    * The collector's watched-counter baseline is seeded from the
      post-construction kernel stats, so setup-time movement never
      surfaces as phantom first-poll events.
    * The post-arrival tail of the event loop keeps *both* timers
      firing to the end of the run, so the scrubber holds its
      ``scrub_every_ms`` cadence even when arrivals end early.
    """

    def test_chaos_free_first_snapshot_has_no_events(self):
        # No fault plan, one CPU: nothing in the run can legitimately
        # produce an event, so every snapshot's event stream — the
        # first one especially, which pre-fix carried phantom events
        # for setup-time counter movement — must be empty.
        stream, result = _run(plan=None)
        snaps = [json.loads(line) for line in stream.splitlines()]
        assert snaps
        assert snaps[0]["events"] == []
        assert all(snap["events"] == [] for snap in snaps)
        assert result.summaries["plb"]["faults"]["injected"] == 0

    def test_scrub_cadence_held_when_arrivals_end_early(self):
        # Seed 16 at 10 rps puts the last arrival at ~97 ms of a
        # 300 ms run.  The scrubber must keep its 50 ms cadence
        # through the arrival-free tail: exactly 300 // 50 = 6 runs
        # (chaos-free, so no retry scrubs muddy the count).  Pre-fix
        # the tail fired snapshots only plus one drain scrub,
        # yielding 2.
        stream, result = _run(
            duration_ms=300, seed=16, plan=None, rates={"rpc": 10.0}
        )
        assert result.stats["plb"]["scrub.runs"] == 6
        final = json.loads(stream.splitlines()[-1])
        assert final["faults"]["scrub_runs"] == 6

    def test_off_cadence_duration_gets_final_drain_scrub(self):
        # 130 ms is not a multiple of the 50 ms cadence: ticks land at
        # 50 and 100 ms, and the end-of-run drain adds one more.
        _, result = _run(duration_ms=130, plan=None, rates={"rpc": 10.0})
        assert result.stats["plb"]["scrub.runs"] == 3


class TestExporters:
    def test_prometheus_rendering_covers_the_families(self):
        _, result = _run()
        snap_stream, _ = _run()
        snap = json.loads(snap_stream.splitlines()[-1])
        text = render_prometheus({"plb": snap})
        for family in (
            "repro_requests_total",
            "repro_refs_per_sec",
            "repro_request_latency_cycles",
            "repro_verb_latency_cycles",
            "repro_faults_injected_total",
            "repro_recovery_time_us",
        ):
            assert f"# TYPE {family}" in text
        assert 'model="plb"' in text
        assert 'quantile="p999"' in text

    def test_all_rates_default_classes_get_served(self):
        stream, result = _run(duration_ms=300)
        final = json.loads(stream.splitlines()[-1])
        assert set(final["requests"]["per_class"]) == set(DEFAULT_RATES)


class TestSLOReporting:
    def test_format_and_reports_round_trip(self):
        from repro.analysis.slo import build_slo_reports, format_slo_summary

        _, result = _run()
        text = format_slo_summary(result.summaries)
        assert "Serve SLO summary" in text
        assert "recovery time under fault" in text or True
        reports = build_slo_reports(result.summaries, result.stats)
        assert [r.title for r in reports] == ["serve-plb"]
        assert reports[0].summary["requests"] == result.summaries["plb"]["requests"]
        assert reports[0].cycles_total > 0
