"""CLI surface of serve mode and the bench report satellite."""

from __future__ import annotations

import json

from repro.cli import main


class TestServeCommand:
    def test_serve_prints_slo_summary_and_exits_zero(self, capsys):
        assert main([
            "serve", "--duration", "100", "--seed", "7", "--models", "plb",
            "--plan", "mixed",
        ]) == 0
        out = capsys.readouterr().out
        assert "Serve SLO summary" in out
        assert "[plb] latency (simulated cycles)" in out

    def test_serve_writes_all_three_exports(self, tmp_path, capsys):
        jsonl = tmp_path / "metrics.jsonl"
        prom = tmp_path / "metrics.prom"
        report = tmp_path / "slo.json"
        assert main([
            "serve", "--duration", "100", "--seed", "7", "--models", "plb",
            "--plan", "mixed",
            "--jsonl-out", str(jsonl),
            "--prom-out", str(prom),
            "--report-out", str(report),
        ]) == 0
        capsys.readouterr()
        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(line)["model"] == "plb" for line in lines)
        assert "# TYPE repro_requests_total counter" in prom.read_text()
        data = json.loads(report.read_text())
        assert [r["title"] for r in data["reports"]] == ["serve-plb"]
        assert data["reports"][0]["summary"]["sustained_refs_per_sec"] > 0

    def test_serve_divergence_exits_one(self, capsys):
        assert main([
            "serve", "--duration", "400", "--seed", "2", "--models", "plb",
            "--plan", "unrecoverable", "--rates", "rpc=150",
        ]) == 1
        err = capsys.readouterr().err
        assert "unrecovered divergence" in err

    def test_serve_rejects_unknown_preset_and_class(self, capsys):
        assert main(["serve", "--plan", "bogus"]) == 2
        capsys.readouterr()
        assert main(["serve", "--rates", "bogus=3"]) == 2

    def test_serve_rejects_degenerate_knobs(self, capsys):
        assert main(["serve", "--duration", "0"]) == 2
        capsys.readouterr()
        assert main(["serve", "--cpus", "0"]) == 2
        capsys.readouterr()
        assert main(["serve", "--rates", "rpc=-1"]) == 2


class TestBenchReportOut:
    def test_bench_writes_structured_throughput_reports(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "--models", "plb", "--refs", "2000", "--pages", "2",
            "--report-out", str(out),
        ]) == 0
        capsys.readouterr()
        data = json.loads(out.read_text())
        assert [r["title"] for r in data["reports"]] == ["bench-replay-plb"]
        summary = data["reports"][0]["summary"]
        assert summary["refs"] == 2000
        assert summary["refs_per_sec_full"] > 0
        assert summary["refs_per_sec_recipe"] > 0
        assert summary["refs_per_sec_fused"] > 0
        assert summary["stats_identical"] is True
        # The counters themselves ride along for regression tooling.
        assert data["reports"][0]["counters"]["refs"] == 2000

    def test_bench_registers_reports_with_benchout(self, capsys):
        from repro.analysis import benchout

        benchout.clear()
        assert main(["bench", "--models", "plb", "--refs", "1000"]) == 0
        capsys.readouterr()
        reports = benchout.run_reports()
        assert [r.title for r in reports] == ["bench-replay-plb"]
        assert reports[0].summary["refs_per_sec_full"] > 0
        benchout.clear()
