"""Unit tests for the Stats counter substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Stats


class TestBasicCounting:
    def test_counters_start_at_zero(self):
        stats = Stats()
        assert stats["anything"] == 0
        assert "anything" not in stats

    def test_inc_creates_and_accumulates(self):
        stats = Stats()
        stats.inc("plb.hit")
        stats.inc("plb.hit", 4)
        assert stats["plb.hit"] == 5
        assert "plb.hit" in stats

    def test_get_with_default(self):
        stats = Stats()
        assert stats.get("missing", 42) == 42
        stats.inc("present")
        assert stats.get("present", 42) == 1

    def test_len_and_iteration_order(self):
        stats = Stats()
        stats.inc("b")
        stats.inc("a")
        stats.inc("c")
        assert len(stats) == 3
        assert list(stats) == ["a", "b", "c"]

    def test_items_sorted(self):
        stats = Stats()
        stats.inc("z", 1)
        stats.inc("a", 2)
        assert list(stats.items()) == [("a", 2), ("z", 1)]

    def test_clear(self):
        stats = Stats()
        stats.inc("x")
        stats.clear()
        assert len(stats) == 0


class TestHotPathHelpers:
    def test_counter_handle_increments(self):
        stats = Stats()
        inc_hit = stats.counter("plb.hit")
        inc_hit()
        inc_hit(3)
        assert stats["plb.hit"] == 4

    def test_counter_handle_survives_clear(self):
        stats = Stats()
        inc_hit = stats.counter("plb.hit")
        inc_hit(2)
        stats.clear()
        inc_hit()
        assert stats["plb.hit"] == 1

    def test_inc_many_adds_not_replaces(self):
        stats = Stats()
        stats.inc("refs", 5)
        stats.inc_many({"refs": 1, "plb.hit": 1})
        stats.inc_many({"refs": 1, "plb.hit": 1})
        assert stats["refs"] == 7
        assert stats["plb.hit"] == 2

    def test_inc_many_creates_missing_counters(self):
        stats = Stats()
        stats.inc_many({"a.b": 3, "c.d": 0})
        assert stats["a.b"] == 3
        assert stats["c.d"] == 0

    def test_inc_many_matches_sequential_inc(self):
        batched, sequential = Stats(), Stats()
        counts = {"refs": 2, "dcache.hit": 1, "tlb.miss": 4}
        batched.inc_many(counts)
        for name, amount in counts.items():
            sequential.inc(name, amount)
        assert batched.as_dict() == sequential.as_dict()


class TestPrefixQueries:
    def test_total_sums_dotted_prefix(self):
        stats = Stats()
        stats.inc("plb.hit", 3)
        stats.inc("plb.miss", 2)
        stats.inc("plbx.other", 10)
        assert stats.total("plb") == 5

    def test_total_includes_exact_name(self):
        stats = Stats()
        stats.inc("plb", 1)
        stats.inc("plb.hit", 2)
        assert stats.total("plb") == 3

    def test_total_with_trailing_dot(self):
        stats = Stats()
        stats.inc("a.b", 1)
        assert stats.total("a.") == 1

    def test_scoped_keeps_only_prefix(self):
        stats = Stats()
        stats.inc("tlb.fill", 2)
        stats.inc("plb.fill", 3)
        scoped = stats.scoped("tlb")
        assert scoped["tlb.fill"] == 2
        assert scoped["plb.fill"] == 0
        assert len(scoped) == 1


class TestSnapshotDelta:
    def test_delta_measures_only_new_events(self):
        stats = Stats()
        stats.inc("a", 5)
        before = stats.snapshot()
        stats.inc("a", 2)
        stats.inc("b", 1)
        delta = stats.delta(before)
        assert delta["a"] == 2
        assert delta["b"] == 1
        assert len(delta) == 2

    def test_snapshot_is_independent(self):
        stats = Stats()
        stats.inc("a")
        snap = stats.snapshot()
        stats.inc("a")
        assert snap["a"] == 1
        assert stats["a"] == 2

    def test_delta_drops_zero_entries(self):
        stats = Stats()
        stats.inc("a", 3)
        before = stats.snapshot()
        delta = stats.delta(before)
        assert "a" not in delta
        assert len(delta) == 0

    def test_delta_keeps_negative_movement_visible(self):
        """A counter that went backwards is a bug; delta must show it."""
        stats = Stats()
        stats.inc("a", 5)
        before = stats.snapshot()
        stats.inc("a", -2)
        delta = stats.delta(before)
        assert delta["a"] == -2
        assert "a" in delta


class TestMonotonicityGuard:
    def test_passes_when_counters_only_grow(self):
        stats = Stats()
        stats.inc("a", 1)
        before = stats.snapshot()
        stats.inc("a", 3)
        stats.inc("b", 1)
        stats.assert_monotonic(before)  # no raise

    def test_raises_naming_the_regressed_counter(self):
        stats = Stats()
        stats.inc("plb.hit", 5)
        before = stats.snapshot()
        stats.inc("plb.hit", -2)
        with pytest.raises(ValueError, match=r"plb\.hit \(-2\)"):
            stats.assert_monotonic(before)

    def test_counter_returning_to_zero_counts_as_regression(self):
        stats = Stats()
        stats.inc("gone", 4)
        before = stats.snapshot()
        stats.inc("gone", -4)  # back to zero
        with pytest.raises(ValueError, match="gone"):
            stats.assert_monotonic(before)


class TestTop:
    def test_ranked_by_count_then_name(self):
        stats = Stats({"b": 5, "a": 5, "c": 9, "d": 1})
        assert stats.top(3) == [("c", 9), ("a", 5), ("b", 5)]

    def test_prefix_filters_dotted_namespace(self):
        stats = Stats({"plb.hit": 10, "plb.miss": 3, "plbx": 99, "tlb.hit": 7})
        assert stats.top(5, prefix="plb") == [("plb.hit", 10), ("plb.miss", 3)]

    def test_top_zero_and_empty(self):
        assert Stats({"a": 1}).top(0) == []
        assert Stats().top(5) == []


class TestMergeAndExport:
    def test_merge_accumulates(self):
        left = Stats({"a": 1, "b": 2})
        right = Stats({"b": 3, "c": 4})
        left.merge(right)
        assert left.as_dict() == {"a": 1, "b": 5, "c": 4}

    def test_as_dict_is_a_copy(self):
        stats = Stats()
        stats.inc("a")
        copy = stats.as_dict()
        copy["a"] = 99
        assert stats["a"] == 1

    def test_report_alignment_and_filter(self):
        stats = Stats()
        stats.inc("plb.hit", 10)
        stats.inc("tlb.miss", 2)
        report = stats.report("plb")
        assert "plb.hit" in report
        assert "tlb.miss" not in report

    def test_report_empty(self):
        assert "(no events)" in Stats().report()


class TestStatsProperties:
    @given(st.dictionaries(st.text(min_size=1), st.integers(1, 1000), max_size=8))
    def test_merge_totals_are_additive(self, counts):
        left = Stats(counts)
        right = Stats(counts)
        left.merge(right)
        for name, count in counts.items():
            assert left[name] == 2 * count

    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "a.b", "a.b.c", "d"]), st.integers(1, 50)),
            max_size=20,
        )
    )
    def test_delta_of_snapshot_roundtrips(self, events):
        stats = Stats()
        for name, amount in events:
            stats.inc(name, amount)
        before = stats.snapshot()
        more = [("a.b", 3), ("d", 1)]
        for name, amount in more:
            stats.inc(name, amount)
        delta = stats.delta(before)
        assert delta.as_dict() == {"a.b": 3, "d": 1}

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["p.x", "p.y", "p.z", "q.x"]), st.integers(1, 9)
            ),
            max_size=30,
        )
    )
    def test_total_equals_manual_sum(self, events):
        stats = Stats()
        for name, amount in events:
            stats.inc(name, amount)
        manual = sum(amount for name, amount in events if name.startswith("p."))
        assert stats.total("p") == manual
