"""Every mutation path must bump the kernel's ``mutation_epoch``.

The replay memo (ARCHITECTURE.md §9) is correct only if *every* way
protection or translation state can change advances the epoch that
invalidates it.  This matrix enumerates them: every kernel verb, the
fault injector's record path, and the scrubber's repair path.  A verb
added without a ``_trap``/``bump_epoch`` call fails here before it can
let the fast path serve a stale hit.
"""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.faults.errors import HardwareFault
from repro.faults.plan import FaultEvent, FaultInjector, FaultPlan
from repro.faults.scrub import Scrubber
from repro.os.kernel import MODELS, Kernel


class Env:
    """A kernel mid-flight: two domains sharing a populated segment."""

    def __init__(self, model: str) -> None:
        self.kernel = Kernel(model, n_frames=64)
        self.d1 = self.kernel.create_domain("d1")
        self.d2 = self.kernel.create_domain("d2")
        self.seg = self.kernel.create_segment("seg", 4, populate=True)
        self.kernel.attach(self.d1, self.seg, Rights.RW)
        self.kernel.attach(self.d2, self.seg, Rights.READ)
        self.kernel.switch_to(self.d1)


# Each case: env -> zero-arg callable.  Setup that itself traps runs in
# the builder, *before* the epoch is sampled, so only the verb under
# test is credited with the bump.
VERB_CASES = {
    "create_domain": lambda e: lambda: e.kernel.create_domain("d3"),
    "create_segment": lambda e: lambda: e.kernel.create_segment("s2", 2),
    "attach": lambda e: (
        lambda seg: lambda: e.kernel.attach(e.d1, seg, Rights.RW)
    )(e.kernel.create_segment("s2", 2)),
    "detach": lambda e: lambda: e.kernel.detach(e.d2, e.seg),
    "set_page_rights": lambda e: lambda: e.kernel.set_page_rights(
        e.d1, e.seg.base_vpn, Rights.READ
    ),
    "set_segment_rights": lambda e: lambda: e.kernel.set_segment_rights(
        e.d1, e.seg, Rights.READ
    ),
    "set_rights_all_domains": lambda e: lambda: e.kernel.set_rights_all_domains(
        e.seg.base_vpn, Rights.READ
    ),
    "switch_to": lambda e: lambda: e.kernel.switch_to(e.d2),
    "destroy_segment": lambda e: (
        lambda seg: lambda: e.kernel.destroy_segment(seg)
    )(e.kernel.create_segment("doomed", 2)),
    "populate_page": lambda e: (
        lambda seg: lambda: e.kernel.populate_page(seg.base_vpn)
    )(e.kernel.create_segment("cold", 2, populate=False)),
    "unmap_page": lambda e: lambda: e.kernel.unmap_page(e.seg.base_vpn),
    "free_page": lambda e: lambda: e.kernel.free_page(e.seg.base_vpn),
    "rebuild_protection_state": lambda e: lambda: (
        e.kernel.rebuild_protection_state()
    ),
    "attach_tracer": lambda e: lambda: e.kernel.attach_tracer(
        __import__("repro.obs.tracer", fromlist=["Tracer"]).Tracer(e.kernel.stats)
    ),
}

GROUP_CASES = {
    "grant_group": lambda e: lambda: e.kernel.grant_group(e.d2, 1),
    "revoke_group": lambda e: (
        lambda: (e.kernel.grant_group(e.d2, 1), e.kernel.revoke_group(e.d2, 1))
    ),
    "move_page_to_group": lambda e: lambda: e.kernel.move_page_to_group(
        e.seg.base_vpn, 1
    ),
    "set_page_rights_global": lambda e: lambda: (
        e.kernel.set_page_rights_global(e.seg.base_vpn, Rights.READ)
    ),
}


class TestVerbMatrix:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("verb", sorted(VERB_CASES))
    def test_verb_bumps_epoch(self, model, verb):
        env = Env(model)
        call = VERB_CASES[verb](env)
        before = env.kernel.mutation_epoch
        call()
        assert env.kernel.mutation_epoch > before

    @pytest.mark.parametrize("verb", sorted(GROUP_CASES))
    def test_group_verb_bumps_epoch(self, verb):
        env = Env("pagegroup")
        call = GROUP_CASES[verb](env)
        before = env.kernel.mutation_epoch
        call()
        assert env.kernel.mutation_epoch > before

    @pytest.mark.parametrize("model", MODELS)
    def test_fault_handling_bumps_epoch(self, model):
        """Protection/page faults trap, so fault handling invalidates."""
        from repro.sim.machine import Machine

        env = Env(model)
        machine = Machine(env.kernel)
        cold = env.kernel.create_segment("cold", 1, populate=False)
        env.kernel.attach(env.d1, cold, Rights.RW)
        before = env.kernel.mutation_epoch
        result = machine.write(env.d1, env.kernel.params.vaddr(cold.base_vpn))
        assert result.page_faults == 1
        assert env.kernel.mutation_epoch > before


class TestFusedRunSplits:
    """Every invalidation channel must split a fused run.

    The fused-run engine (ARCHITECTURE.md §9) replays whole chunks of
    memoized hits under a single epoch check, so its correctness leans
    on the same invariant as the recipe memo — but through a separate
    cache with its own epoch tracking.  This matrix re-enumerates every
    kernel verb (and the remote-shootdown delivery path) against a
    machine with a hot, fully-fused 512-ref trace: after the verb, the
    next replay must fall back to the per-op loop (``fused_refs`` does
    not grow).  A control case pins the opposite: with no verb, the
    same replay keeps fusing.
    """

    TRACE_LEN = 512  # < Machine.FUSE_CHUNK, so the trace is one chunk

    def _hot_machine(self, env, cpu=None):
        from repro.core.rights import AccessType
        from repro.sim.machine import Machine
        from repro.sim.trace import Ref

        machine = Machine(env.kernel, cpu=cpu)
        params = env.kernel.params
        base = params.vaddr(env.seg.base_vpn)
        line = params.cache_line_bytes
        trace = [
            Ref(env.d1.pd_id, base + (i % 64) * line, AccessType.READ)
            for i in range(self.TRACE_LEN)
        ]
        # Pass 1 warms caches (misses), 2 seeds ``_seen``, 3 records the
        # recipes, 4 compiles and applies the fused run.
        for _ in range(4):
            machine.run(trace)
        assert machine.fused_refs > 0, "hot trace never fused"
        return machine, trace

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("verb", sorted(VERB_CASES))
    def test_verb_splits_fused_run(self, model, verb):
        env = Env(model)
        call = VERB_CASES[verb](env)  # builder traps run before warming
        machine, trace = self._hot_machine(env)
        before = machine.fused_refs
        call()
        machine.run(trace)
        assert machine.fused_refs == before

    @pytest.mark.parametrize("verb", sorted(GROUP_CASES))
    def test_group_verb_splits_fused_run(self, verb):
        env = Env("pagegroup")
        call = GROUP_CASES[verb](env)
        machine, trace = self._hot_machine(env)
        before = machine.fused_refs
        call()
        machine.run(trace)
        assert machine.fused_refs == before

    @pytest.mark.parametrize("model", MODELS)
    def test_hot_replay_keeps_fusing_without_a_verb(self, model):
        """Control: no kernel entry, the next replay fuses end to end."""
        env = Env(model)
        machine, trace = self._hot_machine(env)
        before = machine.fused_refs
        machine.run(trace)
        assert machine.fused_refs == before + self.TRACE_LEN

    @staticmethod
    def _smp_env(model):
        """A two-CPU kernel with one domain on a populated segment."""
        from types import SimpleNamespace

        kernel = Kernel(model, n_frames=64, n_cpus=2)
        d1 = kernel.create_domain("d1")
        seg = kernel.create_segment("seg", 4, populate=True)
        kernel.attach(d1, seg, Rights.RW)
        return SimpleNamespace(kernel=kernel, d1=d1, seg=seg)

    @pytest.mark.parametrize("model", MODELS)
    def test_remote_verb_shootdown_splits_fused_run(self, model):
        """A verb on CPU 0 reaches CPU 1's fused runs over the bus.

        ``unmap_page`` broadcasts a *translation* shootdown on every
        model (rights-only verbs may legitimately skip the bus — e.g.
        the page-group model propagates rights through the group
        table), so it must kill the remote CPU's fused cache."""
        env = self._smp_env(model)
        machine, trace = self._hot_machine(env, cpu=env.kernel.cpus[1])
        before = machine.fused_refs
        env.kernel.set_current_cpu(0)
        env.kernel.unmap_page(env.seg.base_vpn)
        machine.run(trace)
        assert machine.fused_refs == before

    @pytest.mark.parametrize("model", MODELS)
    def test_direct_remote_bump_splits_fused_run(self, model):
        """``bump_epoch_for_cpu`` (the shootdown delivery primitive)
        invalidates the target CPU's fused cache even when the verb's
        own broadcast filtering would have skipped it."""
        env = self._smp_env(model)
        machine, trace = self._hot_machine(env, cpu=env.kernel.cpus[1])
        before = machine.fused_refs
        env.kernel.bump_epoch_for_cpu(1)
        machine.run(trace)
        assert machine.fused_refs == before


class TestFaultSites:
    def test_injector_record_bumps_epoch(self):
        kernel = Kernel("plb")
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("disk", "transient_write", at=0),))
        )
        injector.arm(kernel)
        before = kernel.mutation_epoch
        with pytest.raises(HardwareFault):
            kernel.backing.write(0x10, b"boom")
        assert kernel.mutation_epoch > before
        injector.disarm()

    @pytest.mark.parametrize("model", MODELS)
    def test_clean_scrub_leaves_epoch_alone(self, model):
        """No repairs -> no invalidation: scrubbing is epoch-neutral."""
        env = Env(model)
        before = env.kernel.mutation_epoch
        assert Scrubber(env.kernel).scrub() == 0
        assert env.kernel.mutation_epoch == before

    def test_repairing_scrub_bumps_epoch(self):
        """A scrub that rewrites entries must invalidate the memo."""
        from repro.sim.machine import Machine

        env = Env("plb")
        machine = Machine(env.kernel)
        vaddr = env.kernel.params.vaddr(env.seg.base_vpn)
        machine.write(env.d1, vaddr)
        # Corrupt a PLB entry the touch installed, behind the kernel's
        # back (object mutation: no trap, no epoch bump).
        entries = [
            entry for key, entry in env.kernel.system.plb.items()
            if key.level == 0
        ]
        assert entries
        entries[0].rights = Rights.NONE
        before = env.kernel.mutation_epoch
        assert Scrubber(env.kernel).scrub() >= 1
        assert env.kernel.mutation_epoch > before
