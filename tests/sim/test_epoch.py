"""Every mutation path must bump the kernel's ``mutation_epoch``.

The replay memo (ARCHITECTURE.md §9) is correct only if *every* way
protection or translation state can change advances the epoch that
invalidates it.  This matrix enumerates them: every kernel verb, the
fault injector's record path, and the scrubber's repair path.  A verb
added without a ``_trap``/``bump_epoch`` call fails here before it can
let the fast path serve a stale hit.
"""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.faults.errors import HardwareFault
from repro.faults.plan import FaultEvent, FaultInjector, FaultPlan
from repro.faults.scrub import Scrubber
from repro.os.kernel import MODELS, Kernel


class Env:
    """A kernel mid-flight: two domains sharing a populated segment."""

    def __init__(self, model: str) -> None:
        self.kernel = Kernel(model, n_frames=64)
        self.d1 = self.kernel.create_domain("d1")
        self.d2 = self.kernel.create_domain("d2")
        self.seg = self.kernel.create_segment("seg", 4, populate=True)
        self.kernel.attach(self.d1, self.seg, Rights.RW)
        self.kernel.attach(self.d2, self.seg, Rights.READ)
        self.kernel.switch_to(self.d1)


# Each case: env -> zero-arg callable.  Setup that itself traps runs in
# the builder, *before* the epoch is sampled, so only the verb under
# test is credited with the bump.
VERB_CASES = {
    "create_domain": lambda e: lambda: e.kernel.create_domain("d3"),
    "create_segment": lambda e: lambda: e.kernel.create_segment("s2", 2),
    "attach": lambda e: (
        lambda seg: lambda: e.kernel.attach(e.d1, seg, Rights.RW)
    )(e.kernel.create_segment("s2", 2)),
    "detach": lambda e: lambda: e.kernel.detach(e.d2, e.seg),
    "set_page_rights": lambda e: lambda: e.kernel.set_page_rights(
        e.d1, e.seg.base_vpn, Rights.READ
    ),
    "set_segment_rights": lambda e: lambda: e.kernel.set_segment_rights(
        e.d1, e.seg, Rights.READ
    ),
    "set_rights_all_domains": lambda e: lambda: e.kernel.set_rights_all_domains(
        e.seg.base_vpn, Rights.READ
    ),
    "switch_to": lambda e: lambda: e.kernel.switch_to(e.d2),
    "destroy_segment": lambda e: (
        lambda seg: lambda: e.kernel.destroy_segment(seg)
    )(e.kernel.create_segment("doomed", 2)),
    "populate_page": lambda e: (
        lambda seg: lambda: e.kernel.populate_page(seg.base_vpn)
    )(e.kernel.create_segment("cold", 2, populate=False)),
    "unmap_page": lambda e: lambda: e.kernel.unmap_page(e.seg.base_vpn),
    "free_page": lambda e: lambda: e.kernel.free_page(e.seg.base_vpn),
    "rebuild_protection_state": lambda e: lambda: (
        e.kernel.rebuild_protection_state()
    ),
    "attach_tracer": lambda e: lambda: e.kernel.attach_tracer(
        __import__("repro.obs.tracer", fromlist=["Tracer"]).Tracer(e.kernel.stats)
    ),
}

GROUP_CASES = {
    "grant_group": lambda e: lambda: e.kernel.grant_group(e.d2, 1),
    "revoke_group": lambda e: (
        lambda: (e.kernel.grant_group(e.d2, 1), e.kernel.revoke_group(e.d2, 1))
    ),
    "move_page_to_group": lambda e: lambda: e.kernel.move_page_to_group(
        e.seg.base_vpn, 1
    ),
    "set_page_rights_global": lambda e: lambda: (
        e.kernel.set_page_rights_global(e.seg.base_vpn, Rights.READ)
    ),
}


class TestVerbMatrix:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("verb", sorted(VERB_CASES))
    def test_verb_bumps_epoch(self, model, verb):
        env = Env(model)
        call = VERB_CASES[verb](env)
        before = env.kernel.mutation_epoch
        call()
        assert env.kernel.mutation_epoch > before

    @pytest.mark.parametrize("verb", sorted(GROUP_CASES))
    def test_group_verb_bumps_epoch(self, verb):
        env = Env("pagegroup")
        call = GROUP_CASES[verb](env)
        before = env.kernel.mutation_epoch
        call()
        assert env.kernel.mutation_epoch > before

    @pytest.mark.parametrize("model", MODELS)
    def test_fault_handling_bumps_epoch(self, model):
        """Protection/page faults trap, so fault handling invalidates."""
        from repro.sim.machine import Machine

        env = Env(model)
        machine = Machine(env.kernel)
        cold = env.kernel.create_segment("cold", 1, populate=False)
        env.kernel.attach(env.d1, cold, Rights.RW)
        before = env.kernel.mutation_epoch
        result = machine.write(env.d1, env.kernel.params.vaddr(cold.base_vpn))
        assert result.page_faults == 1
        assert env.kernel.mutation_epoch > before


class TestFaultSites:
    def test_injector_record_bumps_epoch(self):
        kernel = Kernel("plb")
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("disk", "transient_write", at=0),))
        )
        injector.arm(kernel)
        before = kernel.mutation_epoch
        with pytest.raises(HardwareFault):
            kernel.backing.write(0x10, b"boom")
        assert kernel.mutation_epoch > before
        injector.disarm()

    @pytest.mark.parametrize("model", MODELS)
    def test_clean_scrub_leaves_epoch_alone(self, model):
        """No repairs -> no invalidation: scrubbing is epoch-neutral."""
        env = Env(model)
        before = env.kernel.mutation_epoch
        assert Scrubber(env.kernel).scrub() == 0
        assert env.kernel.mutation_epoch == before

    def test_repairing_scrub_bumps_epoch(self):
        """A scrub that rewrites entries must invalidate the memo."""
        from repro.sim.machine import Machine

        env = Env("plb")
        machine = Machine(env.kernel)
        vaddr = env.kernel.params.vaddr(env.seg.base_vpn)
        machine.write(env.d1, vaddr)
        # Corrupt a PLB entry the touch installed, behind the kernel's
        # back (object mutation: no trap, no epoch bump).
        entries = [
            entry for key, entry in env.kernel.system.plb.items()
            if key.level == 0
        ]
        assert entries
        entries[0].rights = Rights.NONE
        before = env.kernel.mutation_epoch
        assert Scrubber(env.kernel).scrub() >= 1
        assert env.kernel.mutation_epoch > before
