"""Tests for the trace format and serialization."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.rights import AccessType
from repro.sim.trace import Ref, Switch, read_trace, write_trace


class TestSerialization:
    def test_roundtrip(self):
        ops = [
            Ref(1, 0x1000, AccessType.READ),
            Ref(2, 0xABC000, AccessType.WRITE),
            Switch(3),
            Ref(1, 0x5008, AccessType.EXECUTE),
        ]
        buffer = io.StringIO()
        assert write_trace(ops, buffer) == 4
        buffer.seek(0)
        assert list(read_trace(buffer)) == ops

    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\nR 1 0x1000 r\n\nS 2\n"
        ops = list(read_trace(io.StringIO(text)))
        assert ops == [Ref(1, 0x1000, AccessType.READ), Switch(2)]

    def test_bad_opcode_rejected(self):
        with pytest.raises(ValueError, match="bad trace line"):
            list(read_trace(io.StringIO("Q 1 2 3\n")))

    def test_bad_access_code_rejected(self):
        with pytest.raises(ValueError):
            list(read_trace(io.StringIO("R 1 0x0 z\n")))

    def test_truncated_line_rejected(self):
        with pytest.raises(ValueError):
            list(read_trace(io.StringIO("R 1\n")))

    def test_write_rejects_foreign_objects(self):
        with pytest.raises(TypeError):
            write_trace([object()], io.StringIO())  # type: ignore[list-item]

    @given(
        st.lists(
            st.one_of(
                st.builds(
                    Ref,
                    pd_id=st.integers(0, 99),
                    vaddr=st.integers(0, (1 << 64) - 1),
                    access=st.sampled_from(list(AccessType)),
                ),
                st.builds(Switch, pd_id=st.integers(0, 99)),
            ),
            max_size=40,
        )
    )
    def test_any_trace_roundtrips(self, ops):
        buffer = io.StringIO()
        write_trace(ops, buffer)
        buffer.seek(0)
        assert list(read_trace(buffer)) == ops
