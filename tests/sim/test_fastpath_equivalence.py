"""Fused, recipe and full replay must be observationally identical.

The replay tower (ARCHITECTURE.md §9) claims byte-identical stats at
every rung: a :class:`Machine` with the fast path off (full walk), one
replaying per-hit recipes (``fast_path=True, fuse_runs=False``) and one
fusing whole runs of memoized hits (``fuse_runs=True``) must end with
equal ``Stats.as_dict()`` — every counter, every value, across every
model.  These tests replay the check package's seeded scenario streams
(the same op vocabulary the differential oracle fuzzes with) through all
three modes, batching consecutive touches into list traces so the
fused-run engine actually engages, including under an armed fault
injector and on a two-CPU kernel, so any divergence — skipped LRU
touches, missed R/M bits, stale hits across a protection change, a fused
chunk replayed past an epoch bump — shows up as a counter mismatch.
"""

from __future__ import annotations

import pytest

from repro.check import ops as opmod
from repro.check.ops import SCENARIOS, generate_ops
from repro.core.rights import AccessType, Rights
from repro.faults.errors import HardwareFault
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.scrub import Scrubber
from repro.os.kernel import MODELS, Kernel, KernelError, SegmentationViolation
from repro.sim.machine import Machine
from repro.sim.trace import Ref

N_OPS = 250
#: 5 scenarios x 4 seeds = 20 distinct op streams per model.
SEEDS = (0, 1, 2, 3)
SCENARIO_SEEDS = [
    (name, seed) for name in sorted(SCENARIOS) for seed in SEEDS
]

#: The three replay rungs: mode name -> (fast_path, fuse_runs).
MODES = {
    "full": (False, False),
    "recipe": (True, False),
    "fused": (True, True),
}

_SKIPPED = (KernelError, SegmentationViolation, KeyError, HardwareFault)


def _apply_verb(kernel, domains, segments, op) -> None:
    """One non-touch scenario op against one kernel (the differ's vocabulary)."""
    if isinstance(op, opmod.CreateDomain):
        domain = kernel.create_domain(op.name)
        domains[domain.pd_id] = domain
    elif isinstance(op, opmod.CreateSegment):
        segment = kernel.create_segment(op.name, op.n_pages, populate=op.populate)
        segments[segment.seg_id] = segment
    elif isinstance(op, opmod.Attach):
        kernel.attach(domains[op.pd], segments[op.seg], op.rights)
    elif isinstance(op, opmod.Detach):
        kernel.detach(domains[op.pd], segments[op.seg])
    elif isinstance(op, opmod.SetPageRights):
        kernel.set_page_rights(domains[op.pd], op.vpn, op.rights)
    elif isinstance(op, opmod.SetSegmentRights):
        kernel.set_segment_rights(domains[op.pd], segments[op.seg], op.rights)
    elif isinstance(op, opmod.SetRightsAll):
        kernel.set_rights_all_domains(op.vpn, op.rights)
    elif isinstance(op, opmod.PageOut):
        kernel.free_page(op.vpn)
    elif isinstance(op, opmod.PageIn):
        kernel.populate_page(op.vpn)
    elif isinstance(op, opmod.Switch):
        kernel.switch_to(domains[op.pd])
    elif isinstance(op, opmod.DestroySegment):
        kernel.destroy_segment(segments.pop(op.seg))
    else:  # pragma: no cover - generator never emits anything else
        raise TypeError(f"unknown op {op!r}")


def replay(model: str, scenario: str, seed: int, *, mode: str,
           chaos: bool = False, n_cpus: int = 1,
           reps: int = 1) -> dict[str, int]:
    """Replay one seeded scenario stream; returns the final merged counters.

    Consecutive touches are batched into ``Ref`` lists and flushed
    through :meth:`Machine.run` — the batching is a function of the op
    stream alone, so every mode replays the *identical* sequence of
    batches and verbs, and the fused engine sees real multi-ref runs.
    Under chaos the injector must tick at every op index, so batches
    collapse to single refs (a one-element list still exercises the
    fused machinery).  With ``n_cpus > 1`` one pinned machine per CPU
    takes the batches round-robin; stats are compared merged.  Ops the
    kernel rejects (gold-invalid edges, faulting touches, fault
    injections) abort their batch at the faulting ref; both the skipped
    set and the abort points are mode-independent, so any counter
    difference is the replay path's fault.

    ``reps`` replays every batch that many times (the *same* list
    object, in every mode): verbs clear the memo, so single-pass
    streams rarely accumulate the two same-epoch hits a recipe — let
    alone a fused run — needs.  Repeat passes warm the memo on the
    early reps and replay fused (through the run cache's id+value
    revalidation) on the later ones, while the executed schedule stays
    mode-independent.
    """
    spec = SCENARIOS[scenario]
    fast, fuse = MODES[mode]
    kernel = Kernel(
        model, n_frames=256, n_cpus=n_cpus,
        system_options=spec.system_options(model),
    )
    machines = [
        Machine(kernel, fast_path=fast, fuse_runs=fuse, cpu=ctx)
        for ctx in kernel.cpus
    ]
    stream = generate_ops(spec, seed, N_OPS)
    injector = scrubber = None
    if chaos:
        injector = FaultInjector(FaultPlan.generate("mixed", seed, N_OPS))
        injector.arm(kernel)
        scrubber = Scrubber(kernel)
    domains: dict = {}
    segments: dict = {}
    batch: list[Ref] = []
    turn = 0

    def flush() -> None:
        nonlocal turn
        if not batch:
            return
        machine = machines[turn % len(machines)]
        turn += 1
        chunk = list(batch)
        for _ in range(reps):
            try:
                machine.run(chunk)
            except _SKIPPED:
                pass
        batch.clear()

    for index, op in enumerate(stream):
        if injector is not None:
            flush()
            try:
                injector.tick(index)
            except HardwareFault:
                pass
        if isinstance(op, opmod.Touch):
            # A touch naming a never-created domain is a gold-invalid
            # edge the per-op loop skipped via KeyError; drop it at
            # batch-build time instead (same skipped set, all modes).
            if op.pd in domains:
                batch.append(Ref(op.pd, op.vaddr, op.access))
                if chaos:
                    flush()
        else:
            flush()
            try:
                _apply_verb(kernel, domains, segments, op)
            except _SKIPPED:
                pass
        if scrubber is not None and (index + 1) % 16 == 0:
            flush()
            scrubber.scrub()
    flush()
    if injector is not None:
        injector.flush_delayed()
        scrubber.scrub()
        injector.disarm()
    # Telemetry for the vacuity guard (not a counter: modes must stay
    # byte-identical, so fused engagement is tracked out of band).
    replay.last_fused_refs = sum(m.fused_refs for m in machines)
    return kernel.merged_stats().as_dict()


class TestByteIdenticalStats:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize(
        "scenario,seed", SCENARIO_SEEDS,
        ids=[f"{name}-s{seed}" for name, seed in SCENARIO_SEEDS],
    )
    def test_three_modes_agree(self, model, scenario, seed):
        full = replay(model, scenario, seed, mode="full")
        recipe = replay(model, scenario, seed, mode="recipe")
        fused = replay(model, scenario, seed, mode="fused")
        assert recipe == full
        assert fused == full

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_three_modes_agree_under_chaos(self, model, seed):
        """Equivalence holds with an armed injector corrupting state."""
        full = replay(model, "fuzz", seed, mode="full", chaos=True)
        recipe = replay(model, "fuzz", seed, mode="recipe", chaos=True)
        fused = replay(model, "fuzz", seed, mode="fused", chaos=True)
        assert recipe == full
        assert fused == full

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_three_modes_agree_on_two_cpus(self, model, scenario):
        """Merged SMP counters agree: fused replay respects remote bumps."""
        full = replay(model, scenario, 0, mode="full", n_cpus=2)
        recipe = replay(model, scenario, 0, mode="recipe", n_cpus=2)
        fused = replay(model, scenario, 0, mode="fused", n_cpus=2)
        assert recipe == full
        assert fused == full

    @pytest.mark.parametrize("model", MODELS)
    def test_repeated_batches_fuse_and_agree(self, model):
        """The matrix is not vacuous: with repeat passes the corpus
        replays fused runs, and the counters still match the full walk."""
        # Five passes per batch: faults and mid-batch domain switches
        # keep bumping the epoch on the early passes, so a recipe only
        # lands around pass 3 and a fused apply around pass 4-5.
        fused_total = 0
        for scenario in sorted(SCENARIOS):
            full = replay(model, scenario, 0, mode="full", reps=5)
            fused = replay(model, scenario, 0, mode="fused", reps=5)
            assert fused == full, f"{scenario} diverged at reps=5"
            fused_total += replay.last_fused_refs
        assert fused_total > 0


class TestMemoEngages:
    """Guard against a vacuous suite: the fast path must actually fire."""

    @pytest.mark.parametrize("model", MODELS)
    def test_repeat_hits_are_memoized(self, model):
        kernel = Kernel(model)
        machine = Machine(kernel)
        domain = kernel.create_domain("app")
        segment = kernel.create_segment("data", 1)
        kernel.attach(domain, segment, Rights.RW)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        # First hit seeds _seen, second records the recipe, third replays.
        for _ in range(3):
            machine.read(domain, vaddr)
        assert machine._memo, "no recipe recorded for a repeat pure hit"
        before = kernel.stats["refs"]
        machine.read(domain, vaddr)
        assert kernel.stats["refs"] == before + 1

    def test_fast_path_off_never_memoizes(self):
        kernel = Kernel("plb")
        machine = Machine(kernel, fast_path=False)
        domain = kernel.create_domain("app")
        segment = kernel.create_segment("data", 1)
        kernel.attach(domain, segment, Rights.RW)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for _ in range(5):
            machine.read(domain, vaddr)
        assert not machine._memo


class TestFusedEngages:
    """The fused engine must fire on a hot trace, byte-identically."""

    @pytest.mark.parametrize("model", MODELS)
    def test_hot_trace_replays_fused(self, model):
        def build():
            kernel = Kernel(model)
            machine = Machine(kernel)
            domain = kernel.create_domain("app")
            segment = kernel.create_segment("data", 4, populate=True)
            kernel.attach(domain, segment, Rights.RW)
            base = kernel.params.vaddr(segment.base_vpn)
            trace = [
                Ref(domain.pd_id, base + (i % 4) * 64,
                    AccessType.WRITE if i % 3 == 0 else AccessType.READ)
                for i in range(256)
            ]
            return kernel, machine, trace

        kernel, machine, trace = build()
        machine.run(trace)  # warm: seeds _seen, records recipes
        machine.run(trace)  # compiles and applies the fused run
        assert machine.fused_refs > 0
        assert machine.fused_runs > 0
        compiled = machine.fused_refs
        machine.run(trace)  # replays from the fused-run cache
        assert machine.fused_refs == 2 * compiled

        # The recipe-only machine replays the identical schedule and
        # must land on identical counters.
        kernel2, machine2, trace2 = build()
        machine2 = Machine(kernel2, fuse_runs=False)
        for _ in range(3):
            machine2.run(trace2)
        assert machine2.fused_refs == 0
        assert kernel.stats.as_dict() == kernel2.stats.as_dict()
