"""Fast path on vs off must be observationally identical.

The replay memo (ARCHITECTURE.md §9) claims byte-identical stats: a
:class:`Machine` with ``fast_path=True`` and one with ``fast_path=False``
replaying the same op stream must end with equal ``Stats.as_dict()`` —
every counter, every value, across every model.  These tests replay the
check package's seeded scenario streams (the same op vocabulary the
differential oracle fuzzes with) through both modes, including under an
armed fault injector, so any divergence the memo could introduce —
skipped LRU touches, missed R/M bits, stale hits across a protection
change — shows up as a counter mismatch.
"""

from __future__ import annotations

import pytest

from repro.check import ops as opmod
from repro.check.ops import SCENARIOS, generate_ops
from repro.core.rights import Rights
from repro.faults.errors import HardwareFault
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.scrub import Scrubber
from repro.os.kernel import MODELS, Kernel, KernelError, SegmentationViolation
from repro.sim.machine import Machine

N_OPS = 250
#: 5 scenarios x 4 seeds = 20 distinct op streams per model.
SEEDS = (0, 1, 2, 3)
SCENARIO_SEEDS = [
    (name, seed) for name in sorted(SCENARIOS) for seed in SEEDS
]


def _apply(kernel, machine, domains, segments, op) -> None:
    """One scenario op against one kernel (the differ's vocabulary)."""
    if isinstance(op, opmod.Touch):
        machine.touch(domains[op.pd], op.vaddr, op.access)
    elif isinstance(op, opmod.CreateDomain):
        domain = kernel.create_domain(op.name)
        domains[domain.pd_id] = domain
    elif isinstance(op, opmod.CreateSegment):
        segment = kernel.create_segment(op.name, op.n_pages, populate=op.populate)
        segments[segment.seg_id] = segment
    elif isinstance(op, opmod.Attach):
        kernel.attach(domains[op.pd], segments[op.seg], op.rights)
    elif isinstance(op, opmod.Detach):
        kernel.detach(domains[op.pd], segments[op.seg])
    elif isinstance(op, opmod.SetPageRights):
        kernel.set_page_rights(domains[op.pd], op.vpn, op.rights)
    elif isinstance(op, opmod.SetSegmentRights):
        kernel.set_segment_rights(domains[op.pd], segments[op.seg], op.rights)
    elif isinstance(op, opmod.SetRightsAll):
        kernel.set_rights_all_domains(op.vpn, op.rights)
    elif isinstance(op, opmod.PageOut):
        kernel.free_page(op.vpn)
    elif isinstance(op, opmod.PageIn):
        kernel.populate_page(op.vpn)
    elif isinstance(op, opmod.Switch):
        kernel.switch_to(domains[op.pd])
    elif isinstance(op, opmod.DestroySegment):
        kernel.destroy_segment(segments.pop(op.seg))
    else:  # pragma: no cover - generator never emits anything else
        raise TypeError(f"unknown op {op!r}")


def replay(model: str, scenario: str, seed: int, *, fast: bool,
           chaos: bool = False) -> dict[str, int]:
    """Replay one seeded scenario stream; returns the final counters.

    Ops the kernel rejects (gold-invalid edges, faulting touches, fault
    injections) are skipped; both modes replay the identical stream, so
    both skip the identical set and any counter difference is the fast
    path's fault.
    """
    spec = SCENARIOS[scenario]
    kernel = Kernel(
        model, n_frames=256, system_options=spec.system_options(model)
    )
    machine = Machine(kernel, fast_path=fast)
    stream = generate_ops(spec, seed, N_OPS)
    injector = scrubber = None
    if chaos:
        injector = FaultInjector(FaultPlan.generate("mixed", seed, N_OPS))
        injector.arm(kernel)
        scrubber = Scrubber(kernel)
    domains: dict = {}
    segments: dict = {}
    for index, op in enumerate(stream):
        if injector is not None:
            try:
                injector.tick(index)
            except HardwareFault:
                pass
        try:
            _apply(kernel, machine, domains, segments, op)
        except (KernelError, SegmentationViolation, KeyError, HardwareFault):
            pass
        if scrubber is not None and (index + 1) % 16 == 0:
            scrubber.scrub()
    if injector is not None:
        injector.flush_delayed()
        scrubber.scrub()
        injector.disarm()
    return kernel.stats.as_dict()


class TestByteIdenticalStats:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize(
        "scenario,seed", SCENARIO_SEEDS,
        ids=[f"{name}-s{seed}" for name, seed in SCENARIO_SEEDS],
    )
    def test_fast_equals_full(self, model, scenario, seed):
        full = replay(model, scenario, seed, fast=False)
        fast = replay(model, scenario, seed, fast=True)
        assert fast == full

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_fast_equals_full_under_chaos(self, model, seed):
        """Equivalence holds with an armed injector corrupting state."""
        full = replay(model, "fuzz", seed, fast=False, chaos=True)
        fast = replay(model, "fuzz", seed, fast=True, chaos=True)
        assert fast == full


class TestMemoEngages:
    """Guard against a vacuous suite: the fast path must actually fire."""

    @pytest.mark.parametrize("model", MODELS)
    def test_repeat_hits_are_memoized(self, model):
        kernel = Kernel(model)
        machine = Machine(kernel)
        domain = kernel.create_domain("app")
        segment = kernel.create_segment("data", 1)
        kernel.attach(domain, segment, Rights.RW)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        # First hit seeds _seen, second records the recipe, third replays.
        for _ in range(3):
            machine.read(domain, vaddr)
        assert machine._memo, "no recipe recorded for a repeat pure hit"
        before = kernel.stats["refs"]
        machine.read(domain, vaddr)
        assert kernel.stats["refs"] == before + 1

    def test_fast_path_off_never_memoizes(self):
        kernel = Kernel("plb")
        machine = Machine(kernel, fast_path=False)
        domain = kernel.create_domain("app")
        segment = kernel.create_segment("data", 1)
        kernel.attach(domain, segment, Rights.RW)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for _ in range(5):
            machine.read(domain, vaddr)
        assert not machine._memo
