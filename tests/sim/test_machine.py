"""Tests for the trace-driven machine and its fault-retry loop."""

from __future__ import annotations

import pytest

from repro.core.rights import AccessType, Rights
from repro.os.kernel import Kernel, SegmentationViolation
from repro.sim.machine import FaultLoop, Machine
from repro.sim.trace import Ref, Switch

from tests.conftest import make_attached_segment


class TestTouch:
    def test_touch_switches_domain_automatically(self, kernel):
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        assert kernel.system.current_domain == domain.pd_id

    def test_touch_does_not_reswitch(self, kernel):
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        switches = kernel.stats["domain_switch"]
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        assert kernel.stats["domain_switch"] == switches

    def test_fault_counts_reported(self, kernel):
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 2, populate=False)
        kernel.attach(domain, segment, Rights.RW)
        result = machine.write(domain, kernel.params.vaddr(segment.base_vpn))
        assert result.page_faults == 1
        assert result.faulted

    def test_unhandled_fault_propagates(self, kernel):
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        with pytest.raises(SegmentationViolation):
            machine.read(domain, 0x9999_0000_0000)

    def test_handler_that_never_fixes_raises_faultloop(self, plb_kernel):
        kernel = plb_kernel
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel, rights=Rights.READ)
        # A handler that claims the fault but does not change anything.
        kernel.add_protection_handler(lambda fault: True)
        with pytest.raises(FaultLoop):
            machine.write(domain, kernel.params.vaddr(segment.base_vpn))


class TestTraceRecording:
    def test_record_and_replay_across_models(self):
        """A trace captured from one model replays exactly on another."""
        from repro.workloads.gc import ConcurrentGC, GCConfig

        config = GCConfig(heap_pages=8, collections=1, mutator_refs_per_cycle=100)
        gc = ConcurrentGC(Kernel("plb"), config)
        log = gc.machine.record_trace()
        gc.run()
        trace = gc.machine.stop_recording()
        assert trace is log and len(trace) > 100
        assert gc.machine.stop_recording() is None

    def test_recorded_refs_match_touches(self, plb_kernel):
        from tests.conftest import make_attached_segment

        kernel = plb_kernel
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        log = machine.record_trace()
        vaddr = kernel.params.vaddr(segment.base_vpn, 8)
        machine.write(domain, vaddr)
        machine.read(domain, vaddr)
        machine.stop_recording()
        machine.read(domain, vaddr)  # not recorded
        assert [ref.vaddr for ref in log] == [vaddr, vaddr]
        assert [ref.access for ref in log] == [AccessType.WRITE, AccessType.READ]

    def test_recorded_trace_serializes(self, tmp_path, plb_kernel):
        import io

        from repro.sim.trace import read_trace, write_trace
        from tests.conftest import make_attached_segment

        kernel = plb_kernel
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        log = machine.record_trace()
        for offset in range(0, 256, 32):
            machine.read(domain, kernel.params.vaddr(segment.base_vpn, offset))
        machine.stop_recording()
        buffer = io.StringIO()
        write_trace(log, buffer)
        buffer.seek(0)
        assert list(read_trace(buffer)) == log


class TestRun:
    def test_run_trace_returns_delta_stats(self, kernel):
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        trace = [
            Ref(domain.pd_id, vaddr, AccessType.WRITE),
            Ref(domain.pd_id, vaddr, AccessType.READ),
        ]
        stats = machine.run(trace)
        assert stats["refs"] == 2
        assert stats["dcache.hit"] == 1

    def test_run_handles_switch_ops(self, kernel):
        machine = Machine(kernel)
        a = kernel.create_domain("a")
        b = kernel.create_domain("b")
        stats = machine.run([Switch(a.pd_id), Switch(b.pd_id)])
        assert stats["domain_switch"] == 2

    def test_run_rejects_foreign_ops(self, kernel):
        machine = Machine(kernel)
        with pytest.raises(TypeError):
            machine.run([42])  # type: ignore[list-item]

    def test_same_trace_all_models(self):
        """One trace drives all three systems — the fairness property."""
        results = {}
        for model in ("plb", "pagegroup", "conventional"):
            kernel = Kernel(model)
            machine = Machine(kernel)
            domain, segment = make_attached_segment(kernel)
            trace = [
                Ref(domain.pd_id, kernel.params.vaddr(segment.base_vpn, off))
                for off in range(0, 2048, 64)
            ]
            stats = machine.run(trace)
            results[model] = stats["refs"]
        assert len(set(results.values())) == 1


def _mixed_trace(kernel):
    """A trace with explicit Switch ops interleaved between refs."""
    a = kernel.create_domain("a")
    b = kernel.create_domain("b")
    segment = kernel.create_segment("shared", 4)
    kernel.attach(a, segment, Rights.RW)
    kernel.attach(b, segment, Rights.RW)
    base = kernel.params.vaddr(segment.base_vpn)
    return [
        Ref(a.pd_id, base, AccessType.WRITE),
        Switch(b.pd_id),
        Ref(b.pd_id, base + 64, AccessType.READ),
        Switch(a.pd_id),
        Ref(a.pd_id, base + 128, AccessType.READ),
    ]


class TestReplayRoundtrip:
    def test_rerecording_a_replay_keeps_switch_ops(self, kernel):
        """run() must log replayed Switch ops, not just Refs.

        Dropping them would make a re-recorded trace diverge in switch
        costs when replayed on another model.
        """
        machine = Machine(kernel)
        trace = _mixed_trace(kernel)
        log = machine.record_trace()
        machine.run(trace)
        machine.stop_recording()
        assert log == trace

    def test_roundtrip_stats_identical_across_models(self):
        """record -> replay -> re-record is a fixpoint on every model."""
        for model in ("plb", "pagegroup", "conventional"):
            kernel = Kernel(model)
            machine = Machine(kernel)
            trace = _mixed_trace(kernel)
            first = machine.run(trace).as_dict()

            replay_kernel = Kernel(model)
            replay_machine = Machine(replay_kernel)
            _mixed_trace(replay_kernel)  # same domains and segment
            log = replay_machine.record_trace()
            second = replay_machine.run(trace).as_dict()
            replay_machine.stop_recording()
            assert log == trace, model
            assert second == first, model


class TestRunSharded:
    @staticmethod
    def _factory():
        kernel = Kernel("plb")
        machine = Machine(kernel)
        domain = kernel.create_domain("test-domain")
        segment = kernel.create_segment("test-segment", 8)
        kernel.attach(domain, segment, Rights.RW)
        return machine

    def _shards(self, n_shards=3, refs_per_shard=40):
        kernel = Kernel("plb")
        domain, segment = make_attached_segment(kernel)
        base = kernel.params.vaddr(segment.base_vpn)
        return [
            [
                Ref(domain.pd_id, base + 64 * ((shard * refs_per_shard + i) % 128))
                for i in range(refs_per_shard)
            ]
            for shard in range(n_shards)
        ]

    def test_jobs_one_equals_jobs_two(self):
        shards = self._shards()
        machine = self._factory()
        serial = machine.run_sharded(shards, jobs=1, factory=self._factory)
        parallel = machine.run_sharded(shards, jobs=2, factory=self._factory)
        assert parallel.as_dict() == serial.as_dict()
        assert serial["refs"] == sum(len(shard) for shard in shards)

    def test_parallel_requires_factory(self):
        machine = self._factory()
        with pytest.raises(ValueError):
            machine.run_sharded(self._shards(), jobs=2)

    def test_no_shards_is_empty_stats(self):
        machine = self._factory()
        assert machine.run_sharded([], jobs=4, factory=self._factory).as_dict() == {}

    def test_no_factory_runs_on_self(self):
        machine = self._factory()
        shards = self._shards()
        merged = machine.run_sharded(shards)
        assert merged["refs"] == sum(len(shard) for shard in shards)
        # Sequential mode shares this machine's kernel: the kernel's own
        # stats advanced too.
        assert machine.stats["refs"] == merged["refs"]
