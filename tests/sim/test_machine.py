"""Tests for the trace-driven machine and its fault-retry loop."""

from __future__ import annotations

import pytest

from repro.core.rights import AccessType, Rights
from repro.os.kernel import Kernel, SegmentationViolation
from repro.sim.machine import FaultLoop, Machine
from repro.sim.trace import Ref, Switch

from tests.conftest import make_attached_segment


class TestTouch:
    def test_touch_switches_domain_automatically(self, kernel):
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        assert kernel.system.current_domain == domain.pd_id

    def test_touch_does_not_reswitch(self, kernel):
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        switches = kernel.stats["domain_switch"]
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        assert kernel.stats["domain_switch"] == switches

    def test_fault_counts_reported(self, kernel):
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 2, populate=False)
        kernel.attach(domain, segment, Rights.RW)
        result = machine.write(domain, kernel.params.vaddr(segment.base_vpn))
        assert result.page_faults == 1
        assert result.faulted

    def test_unhandled_fault_propagates(self, kernel):
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        with pytest.raises(SegmentationViolation):
            machine.read(domain, 0x9999_0000_0000)

    def test_handler_that_never_fixes_raises_faultloop(self, plb_kernel):
        kernel = plb_kernel
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel, rights=Rights.READ)
        # A handler that claims the fault but does not change anything.
        kernel.add_protection_handler(lambda fault: True)
        with pytest.raises(FaultLoop):
            machine.write(domain, kernel.params.vaddr(segment.base_vpn))


class TestTraceRecording:
    def test_record_and_replay_across_models(self):
        """A trace captured from one model replays exactly on another."""
        from repro.workloads.gc import ConcurrentGC, GCConfig

        config = GCConfig(heap_pages=8, collections=1, mutator_refs_per_cycle=100)
        gc = ConcurrentGC(Kernel("plb"), config)
        log = gc.machine.record_trace()
        gc.run()
        trace = gc.machine.stop_recording()
        assert trace is log and len(trace) > 100
        assert gc.machine.stop_recording() is None

    def test_recorded_refs_match_touches(self, plb_kernel):
        from tests.conftest import make_attached_segment

        kernel = plb_kernel
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        log = machine.record_trace()
        vaddr = kernel.params.vaddr(segment.base_vpn, 8)
        machine.write(domain, vaddr)
        machine.read(domain, vaddr)
        machine.stop_recording()
        machine.read(domain, vaddr)  # not recorded
        assert [ref.vaddr for ref in log] == [vaddr, vaddr]
        assert [ref.access for ref in log] == [AccessType.WRITE, AccessType.READ]

    def test_recorded_trace_serializes(self, tmp_path, plb_kernel):
        import io

        from repro.sim.trace import read_trace, write_trace
        from tests.conftest import make_attached_segment

        kernel = plb_kernel
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        log = machine.record_trace()
        for offset in range(0, 256, 32):
            machine.read(domain, kernel.params.vaddr(segment.base_vpn, offset))
        machine.stop_recording()
        buffer = io.StringIO()
        write_trace(log, buffer)
        buffer.seek(0)
        assert list(read_trace(buffer)) == log


class TestRun:
    def test_run_trace_returns_delta_stats(self, kernel):
        machine = Machine(kernel)
        domain, segment = make_attached_segment(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        trace = [
            Ref(domain.pd_id, vaddr, AccessType.WRITE),
            Ref(domain.pd_id, vaddr, AccessType.READ),
        ]
        stats = machine.run(trace)
        assert stats["refs"] == 2
        assert stats["dcache.hit"] == 1

    def test_run_handles_switch_ops(self, kernel):
        machine = Machine(kernel)
        a = kernel.create_domain("a")
        b = kernel.create_domain("b")
        stats = machine.run([Switch(a.pd_id), Switch(b.pd_id)])
        assert stats["domain_switch"] == 2

    def test_run_rejects_foreign_ops(self, kernel):
        machine = Machine(kernel)
        with pytest.raises(TypeError):
            machine.run([42])  # type: ignore[list-item]

    def test_same_trace_all_models(self):
        """One trace drives all three systems — the fairness property."""
        results = {}
        for model in ("plb", "pagegroup", "conventional"):
            kernel = Kernel(model)
            machine = Machine(kernel)
            domain, segment = make_attached_segment(kernel)
            trace = [
                Ref(domain.pd_id, kernel.params.vaddr(segment.base_vpn, off))
                for off in range(0, 2048, 64)
            ]
            stats = machine.run(trace)
            results[model] = stats["refs"]
        assert len(set(results.values())) == 1
