"""The gold model: id/layout lockstep with the kernel, and the contract."""

from __future__ import annotations

import pytest

from repro.check.gold import Expectation, GoldModel
from repro.check.ops import (
    Attach,
    CreateDomain,
    CreateSegment,
    Detach,
    DestroySegment,
    PageOut,
    SetPageRights,
    SetRightsAll,
    SetSegmentRights,
    Touch,
)
from repro.core.rights import AccessType, Rights
from repro.os.kernel import Kernel


def build(gold: GoldModel, *ops):
    last = None
    for op in ops:
        assert gold.validates(op), op
        last = gold.apply(op)
    return last


class TestKernelLockstep:
    """Ids and segment placement must mirror every kernel exactly."""

    @pytest.mark.parametrize("pages", [1, 3, 8, 16])
    def test_segment_placement_matches_kernel(self, any_model, pages):
        kernel = Kernel(any_model)
        gold = GoldModel()
        for index in range(3):
            segment = kernel.create_segment(f"s{index}", pages)
            mirror = gold.apply(CreateSegment(f"s{index}", pages, True))
            assert mirror.seg_id == segment.seg_id
            assert mirror.base_vpn == segment.base_vpn

    def test_domain_ids_match_kernel(self, any_model):
        kernel = Kernel(any_model)
        gold = GoldModel()
        for index in range(3):
            domain = kernel.create_domain(f"d{index}")
            assert gold.apply(CreateDomain(f"d{index}")) == domain.pd_id


class TestContract:
    def test_plb_checks_protection_before_translation(self):
        """Unattached reference: PLB faults protection, never pages."""
        gold = GoldModel()
        build(
            gold,
            CreateDomain("d"),
            CreateSegment("s", 4, False),  # not resident
        )
        assert gold.expect("plb", 1, 0x100, AccessType.READ) == Expectation(
            "prot", "unattached", page_fault=False
        )
        # The translating models page-fault first on the same reference.
        for model in ("conventional", "pagegroup"):
            assert gold.expect(model, 1, 0x100, AccessType.READ).page_fault

    def test_dead_segment_is_unattached_on_plb_fatal_elsewhere(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("d"),
            CreateSegment("s", 4, True),
            CreateSegment("s2", 4, True),
            Attach(1, 1, Rights.RW),
            DestroySegment(1),
        )
        assert gold.expect("plb", 1, 0x100, AccessType.READ) == Expectation(
            "prot", "unattached"
        )
        assert gold.expect("conventional", 1, 0x100, AccessType.READ).kind == "fatal"
        assert gold.expect("pagegroup", 1, 0x100, AccessType.READ).kind == "fatal"

    def test_denied_write_read_only_attachment(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("d"),
            CreateSegment("s", 4, True),
            Attach(1, 1, Rights.READ),
        )
        for model in ("plb", "conventional", "pagegroup"):
            expect = gold.expect(model, 1, 0x100, AccessType.WRITE)
            assert (expect.kind, expect.reason) == ("prot", "denied"), model
            assert gold.expect(model, 1, 0x100, AccessType.READ).kind == "allowed"

    def test_pagegroup_rights_are_global(self):
        """SetPageRights moves the page for *every* holder (§4.1.2)."""
        gold = GoldModel()
        build(
            gold,
            CreateDomain("a"),
            CreateDomain("b"),
            CreateSegment("s", 4, True),
            Attach(1, 1, Rights.RW),
            Attach(2, 1, Rights.RW),
            SetPageRights(1, 0x100, Rights.READ),
        )
        # Domain-page models: only domain 1's rights changed.
        assert gold.expect("plb", 2, 0x100, AccessType.WRITE).kind == "allowed"
        # Page-group model: the page now lives in domain 1's private
        # group, so domain 2 lost access entirely.
        expect = gold.expect("pagegroup", 2, 0x100, AccessType.WRITE)
        assert (expect.kind, expect.reason) == ("prot", "unattached")

    def test_pagegroup_detached_domain_keeps_private_pages(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("a"),
            CreateSegment("s", 4, True),
            Attach(1, 1, Rights.RW),
            SetPageRights(1, 0x100, Rights.RW),
            Detach(1, 1),
        )
        # Domain-page models: detach revokes everything.
        assert gold.expect("plb", 1, 0x100, AccessType.READ).reason == "unattached"
        # Page-group: the private-group holding survives the detach.
        assert gold.expect("pagegroup", 1, 0x100, AccessType.READ).kind == "allowed"
        assert gold.expect("pagegroup", 1, 0x101, AccessType.READ).reason == "unattached"

    def test_read_only_attach_write_disables_the_group(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("a"),
            CreateDomain("b"),
            CreateSegment("s", 4, True),
            Attach(1, 1, Rights.RW),
            Attach(2, 1, Rights.READ),
        )
        assert gold.expect("pagegroup", 1, 0x100, AccessType.WRITE).kind == "allowed"
        expect = gold.expect("pagegroup", 2, 0x100, AccessType.WRITE)
        assert (expect.kind, expect.reason) == ("prot", "denied")

    def test_set_segment_rights_clears_page_overrides(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("d"),
            CreateSegment("s", 4, True),
            Attach(1, 1, Rights.RW),
            SetPageRights(1, 0x100, Rights.NONE),
            SetSegmentRights(1, 1, Rights.READ),
        )
        assert gold.expect("plb", 1, 0x100, AccessType.READ).kind == "allowed"
        assert gold.expect("plb", 1, 0x100, AccessType.WRITE).reason == "denied"

    def test_set_rights_all_reaches_every_attached_domain(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("a"),
            CreateDomain("b"),
            CreateSegment("s", 4, True),
            Attach(1, 1, Rights.RW),
            Attach(2, 1, Rights.RW),
            SetRightsAll(0x100, Rights.READ),
        )
        for model in ("plb", "conventional", "pagegroup"):
            for pd in (1, 2):
                expect = gold.expect(model, pd, 0x100, AccessType.WRITE)
                assert (expect.kind, expect.reason) == ("prot", "denied"), (model, pd)

    def test_page_out_makes_translating_models_fault(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("d"),
            CreateSegment("s", 4, True),
            Attach(1, 1, Rights.RW),
            PageOut(0x100),
        )
        assert gold.expect("plb", 1, 0x100, AccessType.READ) == Expectation(
            "allowed", page_fault=True
        )
        assert gold.expect("conventional", 1, 0x100, AccessType.READ).page_fault

    def test_touch_populates_live_page(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("d"),
            CreateSegment("s", 4, False),
            Attach(1, 1, Rights.RW),
        )
        assert 0x100 not in gold.resident
        gold.apply(Touch(1, gold.params.vaddr(0x100), AccessType.READ))
        assert 0x100 in gold.resident


class TestValidity:
    def test_double_attach_invalid(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("d"),
            CreateSegment("s", 4, True),
            Attach(1, 1, Rights.RW),
        )
        assert not gold.validates(Attach(1, 1, Rights.READ))

    def test_verbs_on_dead_segment_invalid(self):
        gold = GoldModel()
        build(
            gold,
            CreateDomain("d"),
            CreateSegment("s", 4, True),
            Attach(1, 1, Rights.RW),
            DestroySegment(1),
        )
        for op in (
            Attach(1, 1, Rights.RW),
            Detach(1, 1),
            SetSegmentRights(1, 1, Rights.READ),
            SetPageRights(1, 0x100, Rights.READ),
            SetRightsAll(0x100, Rights.READ),
            PageOut(0x100),
            DestroySegment(1),
        ):
            assert not gold.validates(op), op
        # A touch into the dead range stays valid: it's a reference, and
        # the fault classification is exactly what the oracle compares.
        assert gold.validates(Touch(1, gold.params.vaddr(0x100), AccessType.READ))
