"""The op vocabulary: serialization, generation determinism, validity."""

from __future__ import annotations

import pytest

from repro.check.gold import GoldModel
from repro.check.ops import (
    SCENARIOS,
    Attach,
    CreateDomain,
    CreateSegment,
    SetPageRights,
    Touch,
    generate_ops,
    op_from_dict,
    ops_from_dicts,
)
from repro.core.rights import AccessType, Rights


class TestSerialization:
    def test_round_trip_every_kind(self):
        samples = [
            CreateDomain("d"),
            CreateSegment("s", 8, True),
            Attach(1, 2, Rights.RW),
            SetPageRights(3, 0x140, Rights.NONE),
            Touch(1, 0x100123, AccessType.WRITE),
        ]
        for op in samples:
            payload = op.to_dict()
            assert op_from_dict(payload) == op

    def test_dicts_are_json_plain(self):
        import json

        payload = Attach(1, 2, Rights.READ).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["rights"] == int(Rights.READ)

    def test_touch_access_serializes_as_string(self):
        payload = Touch(1, 0x100000, AccessType.READ).to_dict()
        assert payload["access"] == "read"
        assert op_from_dict(payload).access is AccessType.READ

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            op_from_dict({"op": "Nope"})

    def test_stream_round_trip(self):
        ops = generate_ops(SCENARIOS["fuzz"], seed=3, n_ops=80)
        rebuilt = ops_from_dicts(op.to_dict() for op in ops)
        assert rebuilt == ops


class TestGeneration:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_deterministic_per_seed(self, name):
        first = generate_ops(SCENARIOS[name], seed=5, n_ops=60)
        second = generate_ops(SCENARIOS[name], seed=5, n_ops=60)
        assert first == second

    def test_different_seeds_differ(self):
        assert generate_ops(SCENARIOS["fuzz"], 0, 60) != generate_ops(
            SCENARIOS["fuzz"], 1, 60
        )

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_stream_is_gold_valid(self, name):
        """Every generated op must satisfy the kernel preconditions."""
        gold = GoldModel()
        for op in generate_ops(SCENARIOS[name], seed=2, n_ops=120):
            assert gold.validates(op), op
            gold.apply(op)

    def test_stream_reaches_requested_length(self):
        ops = generate_ops(SCENARIOS["fuzz"], seed=0, n_ops=100)
        assert len(ops) >= 100

    def test_streams_include_faulting_touches(self):
        """The generator must exercise denied/unattached references."""
        gold = GoldModel()
        outcomes = set()
        for op in generate_ops(SCENARIOS["rights"], seed=1, n_ops=200):
            if isinstance(op, Touch):
                vpn = gold.params.vpn(op.vaddr)
                outcomes.add(gold.expect("plb", op.pd, vpn, op.access).kind)
            gold.apply(op)
        assert "allowed" in outcomes
        assert "prot" in outcomes
