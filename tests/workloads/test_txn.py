"""Tests for the transactional VM workload (Table 1 rows 8-10)."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.os.kernel import Kernel, SegmentationViolation
from repro.workloads.txn import TransactionalVM, TxnConfig

SMALL = TxnConfig(db_pages=16, transactions=6, touches_per_txn=12, concurrent=2, seed=4)


class TestProtocol:
    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_all_transactions_commit(self, model):
        txn = TransactionalVM(Kernel(model), SMALL)
        report = txn.run()
        assert report.commits == SMALL.transactions
        assert report.read_locks + report.write_locks > 0

    def test_lock_state_empty_after_run(self):
        txn = TransactionalVM(Kernel("plb"), SMALL)
        txn.run()
        assert not txn._locks
        assert not txn._active

    def test_committed_domain_loses_access(self):
        txn = TransactionalVM(Kernel("plb"), SMALL)
        domain = txn.begin("t")
        vaddr = txn.kernel.params.vaddr(txn.db.base_vpn)
        txn.machine.write(domain, vaddr)  # faults, takes write lock
        txn.commit(domain)
        with pytest.raises(SegmentationViolation):
            txn.machine.read(domain, vaddr)

    def test_write_lock_excludes_readers(self):
        txn = TransactionalVM(Kernel("plb"), SMALL)
        writer = txn.begin("w")
        reader = txn.begin("r")
        vaddr = txn.kernel.params.vaddr(txn.db.base_vpn)
        txn.machine.write(writer, vaddr)
        from repro.workloads.txn import _Conflict

        with pytest.raises(_Conflict):
            txn.machine.read(reader, vaddr)
        assert txn.report.conflicts_skipped == 1

    def test_shared_read_locks_coexist(self):
        txn = TransactionalVM(Kernel("plb"), SMALL)
        r1 = txn.begin("r1")
        r2 = txn.begin("r2")
        vaddr = txn.kernel.params.vaddr(txn.db.base_vpn)
        txn.machine.read(r1, vaddr)
        txn.machine.read(r2, vaddr)
        assert txn.report.read_locks == 2

    def test_write_after_own_read_upgrades(self):
        txn = TransactionalVM(Kernel("plb"), SMALL)
        t = txn.begin("t")
        vaddr = txn.kernel.params.vaddr(txn.db.base_vpn)
        txn.machine.read(t, vaddr)
        txn.machine.write(t, vaddr)
        assert txn.report.write_locks == 1

    def test_rejects_bad_strategy(self):
        with pytest.raises(ValueError):
            TransactionalVM(Kernel("pagegroup"), TxnConfig(lock_strategy="bogus"))


class TestPLBLockCosts:
    def test_lock_grant_is_plb_update_or_lazy(self):
        """Table 1: lock = 'set the read bit in the PLB entry'."""
        txn = TransactionalVM(Kernel("plb"), SMALL)
        report = txn.run()
        # Grants and commit-downgrades run through set_page_rights.
        assert report.stats["kernel.syscall.set_page_rights"] > 0
        assert report.stats.total("pgcache") == 0


class TestPageGroupLockStrategies:
    def test_domain_strategy_alternation(self):
        """§4.1.2: a read-shared page alternates between domains'
        private lock groups."""
        config = TxnConfig(db_pages=16, transactions=6, touches_per_txn=12,
                           concurrent=2, seed=4, lock_strategy="domain",
                           write_fraction=0.1, zipf_s=1.5)
        txn = TransactionalVM(Kernel("pagegroup"), config)
        report = txn.run()
        assert report.group_alternations > 0

    def test_page_strategy_never_alternates(self):
        config = TxnConfig(db_pages=16, transactions=6, touches_per_txn=12,
                           concurrent=2, seed=4, lock_strategy="page",
                           write_fraction=0.1, zipf_s=1.5)
        txn = TransactionalVM(Kernel("pagegroup"), config)
        report = txn.run()
        assert report.group_alternations == 0

    def test_page_strategy_pressures_group_cache(self):
        """§4.1.2: per-page lock groups 'can fill the cache of active
        page-groups if a domain holds many locks'."""
        base = dict(db_pages=32, transactions=4, touches_per_txn=24,
                    concurrent=1, seed=4, write_fraction=0.3)
        small_cache = {"group_capacity": 4}
        domain_txn = TransactionalVM(
            Kernel("pagegroup", system_options=small_cache),
            TxnConfig(lock_strategy="domain", **base),
        )
        page_txn = TransactionalVM(
            Kernel("pagegroup", system_options=small_cache),
            TxnConfig(lock_strategy="page", **base),
        )
        domain_report = domain_txn.run()
        page_report = page_txn.run()
        assert page_report.stats["group_reload"] > domain_report.stats["group_reload"]

    def test_domain_strategy_commit_revokes_lock_group(self):
        txn = TransactionalVM(Kernel("pagegroup"),
                              TxnConfig(db_pages=8, lock_strategy="domain"))
        t = txn.begin("t")
        vaddr = txn.kernel.params.vaddr(txn.db.base_vpn)
        txn.machine.write(t, vaddr)
        lock_group = txn._domain_lock_group[t.pd_id]
        txn.commit(t)
        assert not t.holds_group(lock_group)
        # The next transaction gets a fresh group.
        t2 = txn.begin("t2")
        txn.machine.write(t2, vaddr)
        assert txn._domain_lock_group[t2.pd_id] != lock_group

    def test_page_strategy_page_returns_to_db_group(self):
        txn = TransactionalVM(Kernel("pagegroup"),
                              TxnConfig(db_pages=8, lock_strategy="page"))
        t = txn.begin("t")
        vpn = txn.db.base_vpn
        txn.machine.write(t, txn.kernel.params.vaddr(vpn))
        assert txn.kernel.group_table.aid_of(vpn) != txn.db.aid
        txn.commit(t)
        assert txn.kernel.group_table.aid_of(vpn) == txn.db.aid
