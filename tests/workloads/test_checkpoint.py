"""Tests for the concurrent checkpoint workload (Table 1 rows 11-12)."""

from __future__ import annotations

import pytest

from repro.os.kernel import Kernel
from repro.workloads.checkpoint import CheckpointConfig, ConcurrentCheckpoint

SMALL = CheckpointConfig(
    segment_pages=8, checkpoints=2, refs_per_checkpoint=120, seed=6
)


@pytest.fixture(params=["plb", "pagegroup", "conventional"])
def ckpt(request):
    return ConcurrentCheckpoint(Kernel(request.param), SMALL)


class TestProtocol:
    def test_every_page_checkpointed_every_epoch(self, ckpt):
        report = ckpt.run()
        assert report.pages_checkpointed == SMALL.segment_pages * SMALL.checkpoints
        assert not ckpt._pending

    def test_all_pages_land_on_disk(self, ckpt):
        ckpt.run()
        for vpn in ckpt.segment.vpns():
            assert vpn in ckpt.kernel.backing

    def test_cow_faults_only_for_written_pages(self, ckpt):
        report = ckpt.run()
        assert 0 < report.copy_on_write_faults <= report.pages_checkpointed

    def test_app_writable_after_checkpoint_completes(self, ckpt):
        ckpt.run()
        for vpn in ckpt.segment.vpns():
            ckpt.machine.write(ckpt.app, ckpt.kernel.params.vaddr(vpn))

    def test_app_write_blocked_until_page_checkpointed(self, ckpt):
        ckpt.begin_checkpoint()
        vpn = ckpt.segment.base_vpn
        result = ckpt.machine.write(ckpt.app, ckpt.kernel.params.vaddr(vpn))
        assert result.protection_faults == 1  # the COW fault
        assert vpn not in ckpt._pending  # handled: page checkpointed
        assert ckpt.report.copy_on_write_faults == 1

    def test_reads_never_fault_during_checkpoint(self, ckpt):
        ckpt.begin_checkpoint()
        result = ckpt.machine.read(
            ckpt.app, ckpt.kernel.params.vaddr(ckpt.segment.base_vpn)
        )
        assert result.protection_faults == 0

    def test_identical_page_counts_across_models(self):
        counts = {
            model: ConcurrentCheckpoint(Kernel(model), SMALL).run().pages_checkpointed
            for model in ("plb", "pagegroup", "conventional")
        }
        assert len(set(counts.values())) == 1


class TestModelMechanics:
    def test_plb_restrict_is_a_sweep(self):
        ckpt = ConcurrentCheckpoint(Kernel("plb"), SMALL)
        before = ckpt.kernel.stats.snapshot()
        ckpt.begin_checkpoint()
        delta = ckpt.kernel.stats.delta(before)
        assert delta["plb.sweep_inspected"] >= 0  # sweep path exercised
        assert delta["kernel.syscall.set_segment_rights"] == 1

    def test_pagegroup_restrict_allocates_rw_group(self):
        ckpt = ConcurrentCheckpoint(Kernel("pagegroup"), SMALL)
        ckpt.begin_checkpoint()
        assert ckpt._rw_group is not None
        assert ckpt.app.holds_group(ckpt._rw_group)
        assert ckpt.server.holds_group(ckpt._rw_group)
        # The segment's base group is write-disabled for the app.
        assert ckpt.app.groups[ckpt.segment.aid].write_disable

    def test_pagegroup_checkpointed_page_moves_groups(self):
        ckpt = ConcurrentCheckpoint(Kernel("pagegroup"), SMALL)
        ckpt.begin_checkpoint()
        vpn = ckpt.segment.base_vpn
        ckpt.machine.write(ckpt.app, ckpt.kernel.params.vaddr(vpn))
        assert ckpt.kernel.group_table.aid_of(vpn) == ckpt._rw_group

    def test_pagegroup_old_epoch_groups_redisabled(self):
        """Pages checkpointed in epoch N sit in retired groups; epoch
        N+1 must write-disable them again."""
        ckpt = ConcurrentCheckpoint(Kernel("pagegroup"), SMALL)
        ckpt.run()
        first_epoch_group = ckpt._old_groups[0] if ckpt._old_groups else None
        assert first_epoch_group is not None
        entry = ckpt.app.groups[first_epoch_group]
        assert entry.write_disable
