"""Tests for the shared-library workload (§2.1 code sharing)."""

from __future__ import annotations

import pytest

from repro.core.rights import AccessType
from repro.os.kernel import Kernel, SegmentationViolation
from repro.workloads.shlib import SharedLibraryConfig, SharedLibraryWorkload

SMALL = SharedLibraryConfig(
    libraries=3, library_pages=4, domains=3, data_pages=2,
    rounds=3, fetches_per_round=12, data_touches_per_round=4, seed=8,
)

MODELS = ("plb", "pagegroup", "conventional")


class TestExecution:
    @pytest.mark.parametrize("model", MODELS)
    def test_all_fetches_complete(self, model):
        report = SharedLibraryWorkload(Kernel(model), SMALL).run()
        assert report.rounds == SMALL.rounds
        assert report.fetches == SMALL.rounds * SMALL.domains * SMALL.fetches_per_round

    @pytest.mark.parametrize("model", MODELS)
    def test_library_text_not_writable(self, model):
        workload = SharedLibraryWorkload(Kernel(model), SMALL)
        domain = workload.domains[0]
        library = workload.libraries[0]
        vaddr = workload.kernel.params.vaddr(library.base_vpn)
        workload.machine.touch(domain, vaddr, AccessType.EXECUTE)
        with pytest.raises(SegmentationViolation):
            workload.machine.write(domain, vaddr)

    @pytest.mark.parametrize("model", MODELS)
    def test_private_data_isolated(self, model):
        workload = SharedLibraryWorkload(Kernel(model), SMALL)
        thief = workload.domains[0]
        victim_data = workload.data[1]
        with pytest.raises(SegmentationViolation):
            workload.machine.read(
                thief, workload.kernel.params.vaddr(victim_data.base_vpn)
            )


class TestSharingShape:
    def test_sasos_translations_not_replicated(self):
        """One translation per library page despite many executors."""
        workload = SharedLibraryWorkload(
            Kernel("plb", system_options={"tlb_entries": 4096}), SMALL
        )
        workload.run()
        pages = SMALL.libraries * SMALL.library_pages
        assert workload.library_translation_entries() <= pages

    def test_conventional_translations_replicate(self):
        workload = SharedLibraryWorkload(
            Kernel("conventional", system_options={"tlb_entries": 4096}), SMALL
        )
        workload.run()
        pages = SMALL.libraries * SMALL.library_pages
        assert workload.library_translation_entries() > pages

    def test_same_fetch_work_across_models(self):
        counts = {
            model: SharedLibraryWorkload(Kernel(model), SMALL).run().fetches
            for model in MODELS
        }
        assert len(set(counts.values())) == 1
