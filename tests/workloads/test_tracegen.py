"""Tests for the synthetic trace generators."""

from __future__ import annotations

from collections import Counter

from repro.core.rights import AccessType
from repro.os.segment import VirtualSegment
from repro.workloads.tracegen import RefPattern, TraceGenerator


def segment(pages=16, base=0x100) -> VirtualSegment:
    return VirtualSegment(seg_id=1, name="s", base_vpn=base, n_pages=pages, aid=1)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        seg = segment()
        a = list(TraceGenerator(7).refs(1, seg, 200))
        b = list(TraceGenerator(7).refs(1, seg, 200))
        assert a == b

    def test_different_seeds_differ(self):
        seg = segment()
        a = list(TraceGenerator(7).refs(1, seg, 200))
        b = list(TraceGenerator(8).refs(1, seg, 200))
        assert a != b


class TestRefs:
    def test_exact_count(self):
        refs = list(TraceGenerator(1).refs(1, segment(), 137))
        assert len(refs) == 137

    def test_all_refs_inside_segment(self):
        seg = segment(pages=8)
        for ref in TraceGenerator(1).refs(2, seg, 500):
            assert seg.contains(ref.vaddr >> 12)
            assert ref.pd_id == 2

    def test_write_fraction_respected(self):
        pattern = RefPattern(write_fraction=0.5)
        refs = list(TraceGenerator(1).refs(1, segment(), 2000, pattern))
        writes = sum(1 for r in refs if r.access is AccessType.WRITE)
        assert 0.4 < writes / len(refs) < 0.6

    def test_zero_write_fraction(self):
        pattern = RefPattern(write_fraction=0.0)
        refs = list(TraceGenerator(1).refs(1, segment(), 300, pattern))
        assert all(r.access is AccessType.READ for r in refs)

    def test_zipf_skews_page_popularity(self):
        gen = TraceGenerator(1)
        pattern = RefPattern(zipf_s=1.2, spatial_runs=1)
        refs = list(gen.refs(1, segment(pages=32), 3000, pattern))
        counts = Counter(r.vaddr >> 12 for r in refs)
        top = counts.most_common(1)[0][1]
        assert top > 3000 / 32 * 2  # clearly hotter than uniform

    def test_uniform_when_zipf_zero(self):
        gen = TraceGenerator(1)
        pattern = RefPattern(zipf_s=0.0, spatial_runs=1)
        refs = list(gen.refs(1, segment(pages=8), 4000, pattern))
        counts = Counter(r.vaddr >> 12 for r in refs)
        assert min(counts.values()) > 4000 / 8 * 0.5


class TestSweepAndPick:
    def test_sequential_sweep_covers_every_line(self):
        gen = TraceGenerator(1)
        seg = segment(pages=2)
        refs = list(gen.sequential_sweep(1, seg))
        assert len(refs) == 2 * 4096 // 32
        assert refs[0].vaddr == seg.base_vpn << 12
        deltas = {b.vaddr - a.vaddr for a, b in zip(refs, refs[1:])}
        assert deltas == {32}

    def test_sweep_with_custom_stride(self):
        gen = TraceGenerator(1)
        refs = list(gen.sequential_sweep(1, segment(pages=1), stride=1024))
        assert len(refs) == 4

    def test_pick_pages_distinct_and_inside(self):
        gen = TraceGenerator(1)
        seg = segment(pages=10)
        picked = gen.pick_pages(seg, 5)
        assert len(picked) == len(set(picked)) == 5
        assert all(seg.contains(vpn) for vpn in picked)

    def test_pick_pages_clamps_to_segment(self):
        gen = TraceGenerator(1)
        assert len(gen.pick_pages(segment(pages=3), 10)) == 3
