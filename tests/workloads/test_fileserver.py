"""Tests for the file-server macro-workload (§2.1's motivating scenario)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.os.kernel import Kernel
from repro.workloads.fileserver import FileServer, FileServerConfig

SMALL = FileServerConfig(
    files=6, file_pages=2, clients=2, requests=20,
    lines_per_request=8, active_files=3, seed=5,
)


class TestCopyMode:
    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_all_requests_served(self, model):
        report = FileServer(Kernel(model), SMALL).run()
        assert report.requests == SMALL.requests

    def test_lru_file_churn(self):
        report = FileServer(Kernel("plb"), SMALL).run()
        # More distinct files than the active window: detaches happen.
        assert report.attaches > SMALL.active_files
        assert report.detaches == report.attaches - SMALL.active_files

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            FileServer(Kernel("plb"), dataclasses.replace(SMALL, mode="zero-copy"))


class TestShareMode:
    def make(self, model="plb"):
        return FileServer(
            Kernel(model), dataclasses.replace(SMALL, mode="share")
        )

    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_all_requests_served(self, model):
        report = self.make(model).run()
        assert report.requests == SMALL.requests

    def test_clients_attach_at_most_once_per_file(self):
        server = self.make()
        report = server.run()
        assert report.client_attaches <= SMALL.files * SMALL.clients
        assert report.client_attaches > 0

    def test_share_mode_moves_less_data(self):
        """Pass-by-reference touches roughly half the cache lines that
        copying through the mailbox does (§2.1's argument)."""
        copy_report = FileServer(Kernel("plb"), SMALL).run()
        share_report = self.make().run()
        copy_touches = copy_report.stats["refs"]
        share_touches = share_report.stats["refs"]
        assert share_touches < copy_touches * 0.75

    def test_same_work_across_models(self):
        counts = {
            model: self.make(model).run().stats["refs"]
            for model in ("plb", "pagegroup", "conventional")
        }
        assert len(set(counts.values())) == 1
