"""Tests for the attach/detach micro-workload (Table 1 rows 1-2)."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.os.kernel import Kernel
from repro.workloads.attach import AttachConfig, AttachDetachWorkload

SMALL = AttachConfig(segments=4, pages_per_segment=4, touches_per_segment=8)


class TestWorkload:
    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_counts(self, model):
        workload = AttachDetachWorkload(Kernel(model), SMALL)
        report = workload.run()
        assert report.attaches == SMALL.segments
        assert report.detaches == SMALL.segments

    def test_sharers_multiply_operations(self):
        config = AttachConfig(segments=3, pages_per_segment=4, sharers=2)
        workload = AttachDetachWorkload(Kernel("plb"), config)
        report = workload.run()
        assert report.attaches == 9
        assert report.detaches == 9


class TestPaperContrast:
    """Table 1: detach is the PLB's bad case and the page-group's
    trivial case."""

    def test_plb_detach_inspects_entries(self):
        report = AttachDetachWorkload(Kernel("plb"), SMALL).run()
        assert report.stats["plb.sweep_inspected"] > 0

    def test_pagegroup_detach_no_sweeps(self):
        report = AttachDetachWorkload(Kernel("pagegroup"), SMALL).run()
        assert report.stats.total("plb") == 0
        assert report.stats["pgtlb.update"] == 0

    def test_plb_attach_is_lazy(self):
        """Attach manipulates no hardware on the PLB system."""
        kernel = Kernel("plb")
        workload = AttachDetachWorkload(kernel, SMALL)
        before = kernel.stats.snapshot()
        kernel.attach(workload.domain, workload.segments[0], Rights.RW)
        delta = kernel.stats.delta(before)
        assert delta.total("plb") == 0

    def test_sharing_replicates_plb_but_not_tlb(self):
        config = AttachConfig(
            segments=2, pages_per_segment=4, touches_per_segment=8, sharers=2
        )
        kernel = Kernel("plb")
        report = AttachDetachWorkload(kernel, config).run()
        # 3 domains touched the same pages: PLB filled ~3x the pages,
        # translation TLB only once per page.
        assert report.stats["plb.fill"] >= 2 * report.stats["tlb.fill"]
