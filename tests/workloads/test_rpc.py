"""Tests for the RPC domain-switch workload (Section 4.1.4)."""

from __future__ import annotations

import pytest

from repro.os.kernel import Kernel
from repro.workloads.rpc import RPCConfig, RPCWorkload

SMALL = RPCConfig(calls=20, arg_pages=1, private_segments=3, private_pages=2)


@pytest.fixture(params=["plb", "pagegroup", "conventional"])
def rpc(request):
    return RPCWorkload(Kernel(request.param), SMALL)


class TestPingPong:
    def test_two_switches_per_call_steady_state(self, rpc):
        report = rpc.run()
        # client->server and server->client per call (plus warmup).
        assert report.switches >= 2 * SMALL.calls
        assert report.switches <= 2 * SMALL.calls + 2

    def test_shared_args_visible_both_sides(self, rpc):
        rpc.call_once()  # no faults raised = both sides accessed args

    def test_register_write_per_switch(self, rpc):
        report = rpc.run()
        assert report.stats["pdid.write"] == report.switches


class TestModelSwitchCosts:
    def test_plb_switch_is_register_only(self):
        """§4.1.4: the PLB switch does not touch the PLB."""
        rpc = RPCWorkload(Kernel("plb"), SMALL)
        report = rpc.run()
        assert report.stats["plb.purge"] == 0
        assert report.stats["plb.purge_removed"] == 0
        # Both domains' entries stay resident across switches, so the
        # steady-state runs almost entirely on PLB hits.
        assert report.stats["plb.hit"] > report.stats["plb.fill"] * 5

    def test_pagegroup_switch_purges_and_reloads(self):
        rpc = RPCWorkload(Kernel("pagegroup"), SMALL)
        report = rpc.run()
        # Every switch empties the group cache; the working set of
        # groups (args + private segments) reloads afterwards.
        assert report.stats["pgcache.purge"] >= report.switches
        assert report.stats["group_reload"] >= report.switches

    def test_pagegroup_eager_reload_trades_traps_for_loads(self):
        lazy = RPCWorkload(Kernel("pagegroup"), SMALL).run()
        eager = RPCWorkload(
            Kernel("pagegroup", system_options={"eager_reload": True}), SMALL
        ).run()
        assert eager.stats["group_eager_load"] > 0
        assert eager.stats["group_reload"] < lazy.stats["group_reload"]

    def test_untagged_conventional_purges_everything(self):
        tagged = RPCWorkload(Kernel("conventional"), SMALL).run()
        untagged = RPCWorkload(
            Kernel("conventional", system_options={"asid_tagged": False}), SMALL
        ).run()
        assert untagged.stats["asidtlb.purge_removed"] > 0
        assert tagged.stats["asidtlb.purge_removed"] == 0
        # The purge-on-switch system pays with TLB refills.
        assert untagged.stats["asidtlb.fill"] > tagged.stats["asidtlb.fill"]

    def test_plb_cheapest_switch_path(self):
        """The paper's headline §4.1.4 comparison."""
        costs = {}
        for model in ("plb", "pagegroup"):
            report = RPCWorkload(Kernel(model), SMALL).run()
            costs[model] = (
                report.stats["group_reload"]
                + report.stats["pgcache.fill"]
                + report.stats["plb.purge_removed"]
            )
        assert costs["plb"] == 0
        assert costs["pagegroup"] > 0
