"""Tests for the distributed shared VM workload (Table 1 rows 5-7)."""

from __future__ import annotations

import pytest

from repro.core.rights import AccessType
from repro.workloads.dsm import CopyState, DSMCluster, SHARED_BASE_VPN


@pytest.fixture(params=["plb", "pagegroup", "conventional"])
def cluster(request):
    return DSMCluster(request.param, nodes=3, pages=8, seed=2)


class TestSetup:
    def test_shared_segment_same_global_address_everywhere(self, cluster):
        """Context-independent addressing across the cluster."""
        bases = {node.segment.base_vpn for node in cluster.nodes}
        assert bases == {SHARED_BASE_VPN}

    def test_node0_owns_everything_initially(self, cluster):
        for entry in cluster.directory.values():
            assert entry.owner == 0
            assert entry.state is CopyState.EXCLUSIVE

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            DSMCluster("plb", nodes=1, pages=4)


class TestCoherence:
    def vaddr(self, cluster, vpn_offset=0):
        return cluster.nodes[0].kernel.params.vaddr(SHARED_BASE_VPN + vpn_offset)

    def test_remote_read_fetches_copy(self, cluster):
        reader = cluster.nodes[1]
        reader.machine.read(reader.domain, self.vaddr(cluster))
        entry = cluster.directory[SHARED_BASE_VPN]
        assert entry.state is CopyState.SHARED
        assert 1 in entry.copyset
        assert cluster.stats["dsm.msg.fetch"] == 1

    def test_remote_write_invalidates_other_copies(self, cluster):
        reader = cluster.nodes[1]
        writer = cluster.nodes[2]
        vaddr = self.vaddr(cluster)
        reader.machine.read(reader.domain, vaddr)
        writer.machine.write(writer.domain, vaddr)
        entry = cluster.directory[SHARED_BASE_VPN]
        assert entry.owner == 2
        assert entry.state is CopyState.EXCLUSIVE
        assert entry.copyset == {2}
        # Reader's next access must re-fetch.
        before = cluster.stats["dsm.msg.fetch"]
        reader.machine.read(reader.domain, vaddr)
        assert cluster.stats["dsm.msg.fetch"] == before + 1

    def test_write_demotes_then_read_shares(self, cluster):
        writer = cluster.nodes[1]
        vaddr = self.vaddr(cluster)
        writer.machine.write(writer.domain, vaddr)
        owner_reader = cluster.nodes[0]
        owner_reader.machine.read(owner_reader.domain, vaddr)
        entry = cluster.directory[SHARED_BASE_VPN]
        assert entry.state is CopyState.SHARED
        assert {0, 1} <= entry.copyset | {entry.owner}

    def test_data_travels_with_pages(self, cluster):
        """The page image actually moves between nodes' memories."""
        owner = cluster.nodes[0]
        vpn = SHARED_BASE_VPN
        pfn = owner.kernel.translations.pfn_for(vpn)
        owner.kernel.memory.write_page(pfn, b"payload" + bytes(64))
        reader = cluster.nodes[1]
        reader.machine.read(reader.domain, self.vaddr(cluster))
        got = reader.kernel.memory.read_page(reader.kernel.translations.pfn_for(vpn))
        assert got.startswith(b"payload")

    def test_repeated_local_reads_take_no_protocol_traffic(self, cluster):
        reader = cluster.nodes[1]
        vaddr = self.vaddr(cluster)
        reader.machine.read(reader.domain, vaddr)
        fetches = cluster.stats["dsm.msg.fetch"]
        for _ in range(10):
            reader.machine.read(reader.domain, vaddr)
        assert cluster.stats["dsm.msg.fetch"] == fetches


class TestWorkloadPatterns:
    def test_migratory_generates_invalidates(self, cluster):
        stats = cluster.run_migratory(rounds=1, refs_per_round=80)
        assert stats["dsm.msg.invalidate"] > 0
        assert stats["dsm.get_writable"] > 0

    def test_producer_consumer_fans_out_reads(self, cluster):
        stats = cluster.run_producer_consumer(iterations=3, region_pages=4)
        assert stats["dsm.get_readable"] > 0
        # Each iteration the producer's writes invalidate the consumers.
        assert stats["dsm.msg.invalidate"] > 0

    def test_same_protocol_traffic_across_models(self):
        """Coherence decisions depend on the trace, not the model."""
        traffic = {}
        for model in ("plb", "pagegroup", "conventional"):
            cluster = DSMCluster(model, nodes=3, pages=8, seed=2)
            stats = cluster.run_migratory(rounds=1, refs_per_round=80)
            traffic[model] = (
                stats["dsm.msg.fetch"],
                stats["dsm.msg.invalidate"],
                stats["dsm.get_writable"],
            )
        assert len(set(traffic.values())) == 1


class TestFalseSharing:
    """§4.3: page-granular coherence manufactures false sharing."""

    def test_false_sharing_ping_pongs(self):
        cluster = DSMCluster("plb", nodes=2, pages=8, seed=2)
        stats = cluster.run_false_sharing(rounds=10, pages=2)
        # Every round invalidates both nodes' copies of both pages.
        assert stats["dsm.msg.invalidate"] >= 2 * 10 * 2 - 4

    def test_split_pages_settle(self):
        cluster = DSMCluster("plb", nodes=2, pages=8, seed=2)
        stats = cluster.run_split_pages(rounds=10, pages=2)
        # After each node owns its pages, no further traffic.
        assert stats["dsm.msg.invalidate"] <= 4

    def test_false_sharing_costs_dominate_control(self):
        cluster_fs = DSMCluster("plb", nodes=2, pages=8, seed=2)
        cluster_sp = DSMCluster("plb", nodes=2, pages=8, seed=2)
        fs = cluster_fs.run_false_sharing(rounds=10, pages=2)
        sp = cluster_sp.run_split_pages(rounds=10, pages=2)
        assert fs["dsm.msg.fetch"] > 5 * max(sp["dsm.msg.fetch"], 1)


class TestTable1Verbs:
    def test_invalidate_sets_rights_none(self):
        """Table 1 'Invalidate': make the page inaccessible locally."""
        cluster = DSMCluster("plb", nodes=2, pages=4, seed=2)
        reader, writer = cluster.nodes[0], cluster.nodes[1]
        vaddr = reader.kernel.params.vaddr(SHARED_BASE_VPN)
        writer.machine.write(writer.domain, vaddr)
        # Node 0 (previous owner) was invalidated: its next read faults.
        result = reader.machine.read(reader.domain, vaddr)
        assert result.faulted

    def test_get_readable_leaves_read_only(self):
        cluster = DSMCluster("plb", nodes=2, pages=4, seed=2)
        reader = cluster.nodes[1]
        vaddr = reader.kernel.params.vaddr(SHARED_BASE_VPN)
        reader.machine.read(reader.domain, vaddr)
        writes_before = cluster.stats["dsm.get_writable"]
        reader.machine.write(reader.domain, vaddr)  # must upgrade
        assert cluster.stats["dsm.get_writable"] == writes_before + 1


class TestAggregation:
    def test_total_stats_merges_all_nodes(self):
        cluster = DSMCluster("plb", nodes=2, pages=4, seed=2)
        vaddr = cluster.nodes[1].kernel.params.vaddr(SHARED_BASE_VPN)
        cluster.nodes[1].machine.read(cluster.nodes[1].domain, vaddr)
        total = cluster.total_stats()
        assert total["dsm.get_readable"] == 1
        # Hardware events from both nodes are present.
        assert total["refs"] >= 1
        assert total["kernel.trap"] > 0
