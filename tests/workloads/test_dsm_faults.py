"""The DSM workload patterns under an armed kernel fault injector.

The in-process :class:`~repro.workloads.dsm.DSMCluster` predates the
resilient cluster subsystem, but its typed-fault contract and its
tolerance of kernel-level fault injection are load-bearing: the sharing
patterns must survive protection-cache corruption and machine checks on
a member kernel (the structures are soft state), and an armed injector
whose events never fire must leave the run byte-identical.
"""

from __future__ import annotations

import pytest

from repro.faults.errors import (
    ClusterConfigError,
    DSMProtocolError,
)
from repro.faults.plan import FaultEvent, FaultInjector, FaultPlan
from repro.faults.scrub import Scrubber
from repro.workloads.dsm import DSMCluster, SHARED_BASE_VPN

PATTERNS = (
    "run_migratory",
    "run_producer_consumer",
    "run_false_sharing",
    "run_split_pages",
)

#: Small-run arguments per pattern, keyed to each driver's signature.
PATTERN_ARGS = {
    "run_migratory": {"rounds": 2, "refs_per_round": 60},
    "run_producer_consumer": {"iterations": 4, "region_pages": 4},
    "run_false_sharing": {"rounds": 6, "pages": 2},
    "run_split_pages": {"rounds": 6, "pages": 2},
}


class TestTypedFaults:
    def test_bad_topology_is_a_cluster_config_error(self):
        with pytest.raises(ClusterConfigError):
            DSMCluster("plb", nodes=1, pages=4)
        # The original contract (bare ValueError) still holds.
        with pytest.raises(ValueError):
            DSMCluster("plb", nodes=0, pages=4)

    def test_unknown_page_is_a_protocol_error(self):
        cluster = DSMCluster("plb", nodes=2, pages=4)
        with pytest.raises(DSMProtocolError):
            cluster.get_readable(cluster.nodes[1], SHARED_BASE_VPN + 999)
        # And still a KeyError for seed-contract callers.
        with pytest.raises(KeyError):
            cluster.get_writable(cluster.nodes[0], 0x1)


def _mce_plan() -> FaultPlan:
    """Corruption plus a machine check, firing on the first tick."""
    return FaultPlan(
        events=(
            FaultEvent("cache", "corrupt", at=0),
            FaultEvent("cache", "mce", at=0),
        ),
        seed=11,
        name="dsm-mce",
    )


class TestPatternsUnderInjection:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("model", ("plb", "pagegroup", "conventional"))
    def test_pattern_survives_member_kernel_faults(self, pattern, model):
        cluster = DSMCluster(model, nodes=3, pages=8, seed=4)
        kernel = cluster.nodes[0].kernel
        # Warm the protection structures so corruption has a target.
        getattr(cluster, pattern)(**PATTERN_ARGS[pattern])
        injector = FaultInjector(_mce_plan())
        injector.arm(kernel)
        injector.tick(0)  # corrupt a cached entry, then machine-check
        assert kernel.stats["faults.injected"] >= 1
        # The pattern must complete against the faulted member; the
        # machine check rebuilt soft state, the scrub repairs the rest.
        getattr(cluster, pattern)(**PATTERN_ARGS[pattern])
        injector.disarm()
        Scrubber(kernel).scrub()
        assert kernel.stats["kernel.fault.machine_check"] >= 1
        assert kernel.stats["faults.recovered"] >= 1

    def test_scrub_after_corruption_restores_authority_view(self):
        cluster = DSMCluster("plb", nodes=2, pages=4, seed=4)
        kernel = cluster.nodes[0].kernel
        cluster.run_migratory(rounds=1, refs_per_round=40)
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("cache", "corrupt", at=0),), seed=2)
        )
        injector.arm(kernel)
        injector.tick(0)
        injector.disarm()
        Scrubber(kernel).scrub()
        from repro.check.invariants import check_invariants

        assert check_invariants(kernel) == []


class TestZeroOverheadPin:
    def test_armed_never_firing_injectors_change_nothing(self):
        def run(with_injectors: bool):
            cluster = DSMCluster("plb", nodes=3, pages=8, seed=4)
            injectors = []
            if with_injectors:
                for node in cluster.nodes:
                    injector = FaultInjector(
                        FaultPlan(
                            events=(FaultEvent("cache", "mce", at=10**9),),
                            seed=1,
                        )
                    )
                    injector.arm(node.kernel)
                    injectors.append(injector)
            stats = cluster.run_migratory(rounds=2, refs_per_round=80)
            for injector in injectors:
                injector.disarm()
            return stats.as_dict()

        assert run(False) == run(True)
