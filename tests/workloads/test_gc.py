"""Tests for the concurrent GC workload (Table 1 rows 3-4)."""

from __future__ import annotations

import pytest

from repro.os.kernel import Kernel
from repro.workloads.gc import ConcurrentGC, GCConfig

SMALL = GCConfig(heap_pages=8, collections=2, mutator_refs_per_cycle=150, seed=9)


@pytest.fixture(params=["plb", "pagegroup", "conventional"])
def gc(request):
    return ConcurrentGC(Kernel(request.param), SMALL)


class TestProtocol:
    def test_every_touched_page_gets_scanned_exactly_once(self, gc):
        report = gc.run()
        assert report.pages_scanned == report.scan_faults
        assert 0 < report.pages_scanned <= SMALL.heap_pages * SMALL.collections

    def test_collections_counted(self, gc):
        assert gc.run().collections == SMALL.collections

    def test_mutator_can_rewrite_scanned_pages(self, gc):
        gc.run()
        vpn = next(iter(gc._scanned))
        gc.machine.write(gc.mutator, gc.kernel.params.vaddr(vpn))

    def test_mutator_blocked_from_from_space(self, gc):
        from repro.os.kernel import SegmentationViolation

        gc.run()
        assert gc.from_space is not None
        with pytest.raises(SegmentationViolation):
            gc.machine.read(gc.mutator, gc.kernel.params.vaddr(gc.from_space.base_vpn))

    def test_collector_retains_from_space_access(self, gc):
        gc.run()
        assert gc.from_space is not None
        gc.machine.read(gc.collector, gc.kernel.params.vaddr(gc.from_space.base_vpn))


class TestModelSpecificCosts:
    def test_plb_flip_sweeps_entries(self):
        gc = ConcurrentGC(Kernel("plb"), SMALL)
        report = gc.run()
        # Flip marks from-space no-access via sweep (Table 1).
        assert report.stats["plb.sweep_inspected"] > 0

    def test_pagegroup_flip_moves_groups_not_entries(self):
        gc = ConcurrentGC(Kernel("pagegroup"), SMALL)
        report = gc.run()
        # Scanning moves pages into the scanned group: one TLB update
        # per scanned page, no sweeps.
        assert report.stats["pgtlb.update"] >= report.pages_scanned
        assert report.stats.total("plb") == 0

    def test_same_scan_work_across_models(self):
        """The GC protocol does identical work on all three models."""
        results = {
            model: ConcurrentGC(Kernel(model), SMALL).run()
            for model in ("plb", "pagegroup", "conventional")
        }
        scanned = {r.pages_scanned for r in results.values()}
        assert len(scanned) == 1


class TestAddressSpaceHygiene:
    def test_new_to_space_each_collection(self):
        gc = ConcurrentGC(Kernel("plb"), SMALL)
        bases = [gc.to_space.base_vpn]
        for _ in range(SMALL.collections):
            gc.flip()
            bases.append(gc.to_space.base_vpn)
        assert len(set(bases)) == len(bases)  # addresses never reused
