"""Edge-case and configuration-boundary tests across the workloads."""

from __future__ import annotations

import dataclasses

import pytest

from repro.os.kernel import Kernel
from repro.workloads.checkpoint import CheckpointConfig, ConcurrentCheckpoint
from repro.workloads.compression import CompressionConfig, CompressionPaging
from repro.workloads.gc import ConcurrentGC, GCConfig
from repro.workloads.rpc import RPCConfig, RPCWorkload
from repro.workloads.txn import TransactionalVM, TxnConfig


class TestGCEdges:
    def test_single_collection_minimal_heap(self):
        config = GCConfig(heap_pages=2, collections=1, mutator_refs_per_cycle=40)
        report = ConcurrentGC(Kernel("plb"), config).run()
        assert report.collections == 1
        assert 0 < report.pages_scanned <= 2

    def test_zero_survivor_fraction(self):
        config = GCConfig(heap_pages=4, collections=1,
                          mutator_refs_per_cycle=60, survivor_fraction=0.0)
        report = ConcurrentGC(Kernel("plb"), config).run()
        assert report.pages_scanned > 0

    def test_many_collections_accumulate(self):
        config = GCConfig(heap_pages=4, collections=5, mutator_refs_per_cycle=50)
        report = ConcurrentGC(Kernel("pagegroup"), config).run()
        assert report.collections == 5


class TestTxnEdges:
    def test_single_transaction_no_concurrency(self):
        config = TxnConfig(db_pages=8, transactions=1, touches_per_txn=6,
                           concurrent=1)
        report = TransactionalVM(Kernel("plb"), config).run()
        assert report.commits == 1
        assert report.conflicts_skipped == 0

    def test_concurrency_capped_by_transactions(self):
        config = TxnConfig(db_pages=8, transactions=3, touches_per_txn=4,
                           concurrent=8)
        report = TransactionalVM(Kernel("plb"), config).run()
        assert report.commits == 3

    def test_all_reads_never_conflict(self):
        config = TxnConfig(db_pages=8, transactions=4, touches_per_txn=8,
                           concurrent=2, write_fraction=0.0)
        report = TransactionalVM(Kernel("plb"), config).run()
        assert report.write_locks == 0
        assert report.conflicts_skipped == 0

    def test_all_writes_in_disjoint_regions(self):
        config = TxnConfig(db_pages=8, transactions=4, touches_per_txn=8,
                           concurrent=2, write_fraction=1.0)
        report = TransactionalVM(Kernel("plb"), config).run()
        assert report.read_locks == 0
        assert report.commits == 4


class TestCheckpointEdges:
    def test_no_writes_everything_background(self):
        config = CheckpointConfig(segment_pages=6, checkpoints=1,
                                  refs_per_checkpoint=60, write_fraction=0.0)
        report = ConcurrentCheckpoint(Kernel("plb"), config).run()
        assert report.copy_on_write_faults == 0
        assert report.pages_checkpointed == 6

    def test_all_writes_mostly_cow(self):
        config = CheckpointConfig(segment_pages=6, checkpoints=1,
                                  refs_per_checkpoint=200, write_fraction=1.0,
                                  background_pages_per_step=1)
        report = ConcurrentCheckpoint(Kernel("plb"), config).run()
        assert report.copy_on_write_faults > 0


class TestCompressionEdges:
    def test_budget_equals_segment_no_paging_after_warmup(self):
        config = CompressionConfig(segment_pages=8, resident_budget=8, refs=100)
        report = CompressionPaging(Kernel("plb", n_frames=512), config).run()
        assert report.page_ins == 0

    def test_tiny_budget_thrashes(self):
        config = CompressionConfig(segment_pages=12, resident_budget=2,
                                   refs=150, zipf_s=0.0)
        report = CompressionPaging(Kernel("plb", n_frames=512), config).run()
        # Spatial runs average ~4 refs/page, so nearly every page change
        # misses the 2-page budget.
        assert report.page_ins > 25


class TestRPCEdges:
    def test_zero_private_segments(self):
        config = RPCConfig(calls=5, arg_pages=1, private_segments=0)
        report = RPCWorkload(Kernel("pagegroup"), config).run()
        assert report.calls == 5

    def test_single_call(self):
        config = RPCConfig(calls=1)
        report = RPCWorkload(Kernel("plb"), config).run()
        assert report.calls == 1
        assert report.switches >= 2
