"""Tests for the compression paging workload (Table 1 rows 13-14)."""

from __future__ import annotations

import pytest

from repro.os.kernel import Kernel
from repro.workloads.compression import CompressionConfig, CompressionPaging

SMALL = CompressionConfig(
    segment_pages=16, resident_budget=6, refs=400, seed=13
)


@pytest.fixture(params=["plb", "pagegroup", "conventional"])
def paging(request):
    return CompressionPaging(Kernel(request.param, n_frames=1024), SMALL)


class TestMemoryPressure:
    def test_budget_respected(self, paging):
        paging.run()
        resident = len(paging.kernel.translations.resident_vpns())
        # The app segment can hold at most the budget (other segments
        # and bookkeeping pages are separate).
        app_resident = sum(
            1 for vpn in paging.segment.vpns()
            if paging.kernel.translations.is_resident(vpn)
        )
        assert app_resident <= SMALL.resident_budget

    def test_paging_traffic_happens(self, paging):
        report = paging.run()
        assert report.page_outs > SMALL.segment_pages - SMALL.resident_budget
        assert report.page_ins > 0

    def test_compression_achieves_ratio(self, paging):
        report = paging.run()
        # Pages are 75% zeros: zlib should do far better than 2x.
        assert report.compression_ratio > 2.0

    def test_every_ref_eventually_succeeds(self, paging):
        """No reference is lost to paging: the run completes."""
        report = paging.run()
        assert report.stats["refs"] >= SMALL.refs

    def test_disk_traffic_is_compressed(self, paging):
        report = paging.run()
        raw = report.stats["compress.raw_bytes"]
        written = report.stats["disk.bytes_written"]
        assert written < raw

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            CompressionPaging(
                Kernel("plb"), CompressionConfig(resident_budget=1)
            )


class TestDataIntegrity:
    def test_page_contents_survive_eviction_cycles(self):
        paging = CompressionPaging(Kernel("plb", n_frames=1024), SMALL)
        kernel = paging.kernel
        vpn = paging.segment.base_vpn
        marker = b"MARKER" + bytes(100)
        kernel.memory.write_page(kernel.translations.pfn_for(vpn), marker)
        paging.pager.page_out(vpn)
        paging.pager.page_in(vpn)
        data = kernel.memory.read_page(kernel.translations.pfn_for(vpn))
        assert data.startswith(b"MARKER")

    def test_same_paging_behaviour_across_models(self):
        reports = {
            model: CompressionPaging(Kernel(model, n_frames=1024), SMALL).run()
            for model in ("plb", "pagegroup", "conventional")
        }
        outs = {r.page_outs for r in reports.values()}
        ins = {r.page_ins for r in reports.values()}
        assert len(outs) == 1 and len(ins) == 1
