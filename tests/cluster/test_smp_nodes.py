"""Cluster nodes hosting SMP kernels: fan-out batching and chaos.

A cluster node is no longer a bare single-CPU kernel — it hosts an
``SMPMachine``, so an incoming DSM ``invalidate_range`` must fan out to
the node's M CPUs as ONE batched range shootdown per remote CPU (riding
the node-local ShootdownBus), never one message per page.  The chaos
cases then crash such a node mid-protocol and demand recovery still
converges to gold with per-CPU protection caches in play.
"""

from __future__ import annotations

import pytest

from repro.cluster.chaos import run_cluster_case, run_cluster_sweep
from repro.cluster.dsm import ClusterDSM
from repro.core.rights import AccessType
from repro.faults.plan import FaultPlan
from repro.os.kernel import MODELS


def warm_all_cpus(cluster: ClusterDSM) -> None:
    """Read every page on every CPU of every node: caches go hot."""
    for node in cluster.nodes.values():
        for vpn in cluster.vpns:
            cluster.get_readable(node, vpn)
            for cpu in range(node.kernel.n_cpus):
                node.smp.touch_on(
                    cpu, node.domain,
                    node.kernel.params.vaddr(vpn), AccessType.READ,
                )


class TestSMPNodeComposition:
    @pytest.mark.parametrize("model", MODELS)
    def test_node_hosts_smp_machine(self, model):
        cluster = ClusterDSM(model, nodes=2, pages=4, n_cpus=4)
        for node in cluster.nodes.values():
            assert node.kernel.n_cpus == 4
            assert node.smp.machines[0] is node.machine
            # Shards default to the CPU count: home placement works.
            assert node.kernel.authority.n_shards == 4

    @pytest.mark.parametrize("model", MODELS)
    def test_invalidate_range_is_one_batch_per_remote_cpu(self, model):
        """A K-page acquisition costs each holder node one batched
        range shootdown per remote CPU — the page factor collapses."""
        cpus, k_pages = 4, 6
        cluster = ClusterDSM(model, nodes=3, pages=8, n_cpus=cpus)
        warm_all_cpus(cluster)
        requester = cluster.nodes[0]
        requester.kernel.set_current_cpu(0)
        vpns = cluster.vpns[:k_pages]

        stats_before = {
            node.node_id: node.stats.as_dict()
            for node in cluster.nodes.values()
        }
        cluster.get_writable_range(requester, vpns)

        for node in cluster.nodes.values():
            before = stats_before[node.node_id]
            after = node.stats.as_dict()

            def delta(name: str) -> int:
                return after.get(name, 0) - before.get(name, 0)

            ipi_msgs = (
                delta("smp.shootdown.msgs") + delta("smp.tlb_shootdown.msgs")
            )
            batches = (
                delta("smp.shootdown.batches")
                + delta("smp.tlb_shootdown.batches")
            )
            # One batched message per remote CPU; never K per-page IPIs.
            assert ipi_msgs == cpus - 1, (node.node_id, ipi_msgs)
            assert batches == ipi_msgs
            if node is not requester:
                assert delta("cluster.smp.invalidate_batches") == 1
                assert delta("cluster.smp.invalidate_pages") == k_pages

    def test_single_cpu_node_charges_no_smp_counters(self):
        cluster = ClusterDSM("plb", nodes=2, pages=4, n_cpus=1)
        warm_all_cpus(cluster)
        cluster.get_writable_range(cluster.nodes[0], cluster.vpns[:3])
        for node in cluster.nodes.values():
            counters = node.stats.as_dict()
            assert not any(
                k.startswith("cluster.smp.") for k in counters
            ), counters

    @pytest.mark.parametrize("model", MODELS)
    def test_touch_home_routes_to_shard_home_cpu(self, model):
        cluster = ClusterDSM(model, nodes=2, pages=8, n_cpus=4)
        node = cluster.nodes[0]
        for vpn in cluster.vpns:
            cluster.get_readable(node, vpn)
            addr = node.kernel.params.vaddr(vpn)
            node.touch_home(addr, AccessType.READ)
            home = node.cpu_for(vpn)
            assert home == node.kernel.authority.shard_of(vpn) % 4
            assert node.scheduler.cpu_for(node.domain) == node.cpu_for(
                node.segment.base_vpn
            )


class TestSMPNodeChaos:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("cpus", (2, 4))
    def test_node_crash_with_smp_cpus_converges(self, model, cpus):
        """The satellite case: crash a multi-CPU node mid-protocol and
        recovery must still converge — stale per-CPU protection caches
        on the surviving nodes cannot leak dead-node rights."""
        plan = FaultPlan.generate("cluster-crash", 3, n_ops=48)
        case = run_cluster_case(
            model, 3, nodes=3, pages=6, accesses=48, plan=plan, n_cpus=cpus,
        )
        assert case.ok, case.detail
        assert case.counters.get("cluster.node_deaths", 0) >= 1

    def test_crash_sweep_converges_at_multi_cpu_scale(self):
        sweep = run_cluster_sweep(
            ("plb",), seed=5, nodes=3, pages=4, accesses=24,
            kinds=("node_crash",), stride=8, n_cpus=2,
        )
        assert sweep.ok
        assert sweep.converged == sweep.cases
