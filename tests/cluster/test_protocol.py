"""Tests for the resilient coherence protocol on a healthy cluster."""

from __future__ import annotations

import pytest

from repro.cluster.dsm import ClusterDSM
from repro.cluster.node import stamp_page
from repro.core.rights import AccessType
from repro.faults.errors import ClusterConfigError
from repro.os.kernel import MODELS
from repro.workloads.dsm import CopyState, SHARED_BASE_VPN


@pytest.fixture(params=MODELS)
def cluster(request):
    return ClusterDSM(request.param, nodes=3, pages=4, seed=2)


def touch(cluster, node_id, vpn, access=AccessType.READ):
    node = cluster.nodes[node_id]
    node.machine.touch(node.domain, cluster.params.vaddr(vpn), access)
    return node


class TestSetup:
    def test_needs_two_nodes(self):
        with pytest.raises(ClusterConfigError):
            ClusterDSM("plb", nodes=1, pages=4)

    def test_shared_segment_at_the_global_base(self, cluster):
        assert cluster.vpns[0] == SHARED_BASE_VPN
        bases = {node.segment.base_vpn for node in cluster.nodes.values()}
        assert bases == {SHARED_BASE_VPN}

    def test_node0_owns_everything_with_leases_clear(self, cluster):
        for entry in cluster.directory.values():
            assert entry.owner == 0
            assert entry.lease_until == 0


class TestCoherence:
    def test_remote_read_fetches_over_the_wire(self, cluster):
        vpn = cluster.vpns[0]
        touch(cluster, 1, vpn)
        entry = cluster.directory[vpn]
        assert entry.state is CopyState.SHARED
        assert 1 in entry.copyset
        assert cluster.stats["cluster.msg.sent"] > 0

    def test_remote_write_takes_exclusive_and_leases(self, cluster):
        vpn = cluster.vpns[0]
        touch(cluster, 1, vpn)
        touch(cluster, 2, vpn, AccessType.WRITE)
        entry = cluster.directory[vpn]
        assert entry.owner == 2
        assert entry.state is CopyState.EXCLUSIVE
        assert entry.copyset == {2}
        assert entry.lease_until > 0
        assert cluster._valid[vpn] == {2}

    def test_written_stamp_propagates_to_readers(self, cluster):
        vpn = cluster.vpns[1]
        writer = touch(cluster, 2, vpn, AccessType.WRITE)
        writer.write_page(vpn, stamp_page(cluster.params.page_size, 42))
        reader = touch(cluster, 0, vpn)
        assert reader.stamp(vpn) == 42

    def test_demote_at_source_syncs_the_home_store(self, cluster):
        vpn = cluster.vpns[0]
        writer = touch(cluster, 1, vpn, AccessType.WRITE)
        writer.write_page(vpn, stamp_page(cluster.params.page_size, 9))
        touch(cluster, 2, vpn)  # read pulls the page from the writer
        assert cluster.home[vpn] == stamp_page(cluster.params.page_size, 9)
        assert cluster.directory[vpn].state is CopyState.SHARED

    def test_tick_flushes_exclusive_pages_durable(self, cluster):
        vpn = cluster.vpns[2]
        writer = touch(cluster, 1, vpn, AccessType.WRITE)
        writer.write_page(vpn, stamp_page(cluster.params.page_size, 5))
        flushed = cluster.tick()
        assert vpn in flushed
        assert cluster.home[vpn] == stamp_page(cluster.params.page_size, 5)
        assert cluster.directory[vpn].lease_until > 0

    def test_fault_free_run_needs_no_recovery(self, cluster):
        for i, vpn in enumerate(cluster.vpns):
            touch(cluster, i % 3, vpn, AccessType.WRITE)
            touch(cluster, (i + 1) % 3, vpn)
        stats = cluster.merged_stats()
        assert stats.get("faults.injected", 0) == 0
        assert stats.get("cluster.node_deaths", 0) == 0
        assert stats.get("cluster.retries", 0) == 0

    def test_merged_stats_fold_in_every_node(self, cluster):
        vpn = cluster.vpns[0]
        touch(cluster, 1, vpn)
        merged = cluster.merged_stats()
        per_node = sum(
            node.kernel.merged_stats().get("mem.access", 0)
            for node in cluster.nodes.values()
        )
        assert merged.get("mem.access", 0) == per_node

    def test_reconcile_is_a_no_op_when_consistent(self, cluster):
        vpn = cluster.vpns[0]
        touch(cluster, 1, vpn)
        touch(cluster, 2, vpn, AccessType.WRITE)
        assert cluster.reconcile() == 0
