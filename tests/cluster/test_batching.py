"""Per-node message coalescing on the cluster interconnect.

The DSM's two chatty flows — the periodic writeback flush and the
get-writable invalidate fan-out — each collapse their per-page messages
into one per-node batch: ``writeback_batch`` carries every exclusive
page an owner flushes this tick, ``invalidate_range`` carries every
copy one holder must drop.  These tests pin the wire-cost model (K
pages share one header), the serialization round trip (chaos repro
dumps must carry batches faithfully), and the protocol-visible effects
(same end state, fewer messages, fewer interconnect cycles).
"""

from __future__ import annotations

import pytest

from repro.cluster.dsm import ClusterDSM
from repro.cluster.interconnect import Interconnect
from repro.cluster.messages import Message
from repro.cluster.node import stamp_page
from repro.core.rights import AccessType, Rights
from repro.os.kernel import MODELS
from repro.sim.stats import Stats


def touch(cluster, node_id, vpn, access=AccessType.READ):
    node = cluster.nodes[node_id]
    node.machine.touch(node.domain, cluster.params.vaddr(vpn), access)
    return node


class TestBatchMessages:
    def test_payloads_must_match_vpns(self):
        with pytest.raises(ValueError):
            Message("writeback_batch", src=0, dst=1, vpns=(1, 2),
                    payloads=(b"x",))
        with pytest.raises(ValueError):
            Message("writeback_batch", src=0, dst=1, payloads=(b"x",))

    def test_batch_round_trips_through_dicts(self):
        message = Message(
            "writeback_batch", src=2, dst=0, vpns=(5, 9),
            payloads=(b"\x01" * 8, b"\x02" * 8),
        )
        assert Message.from_dict(message.to_dict()) == message
        plain = Message("invalidate_range", src=1, dst=2, vpns=(3, 4, 5))
        assert Message.from_dict(plain.to_dict()) == plain

    def test_wire_cost_shares_one_header_across_the_batch(self):
        net = Interconnect(Stats())
        single = Message("writeback", src=0, dst=1, vpn=1, payload=b"x")
        batch3 = Message(
            "writeback_batch", src=0, dst=1, vpns=(1, 2, 3),
            payloads=(b"x", b"y", b"z"),
        )
        one_page = net._wire_cost(single)
        assert one_page == net.page_latency_cycles
        # 3 pages: one header + 3 data times, cheaper than 3 messages.
        assert net._wire_cost(batch3) == (
            net.latency_cycles
            + 3 * (net.page_latency_cycles - net.latency_cycles)
        )
        assert net._wire_cost(batch3) < 3 * one_page

    def test_invalidate_range_is_header_cost_only(self):
        net = Interconnect(Stats())
        ranged = Message("invalidate_range", src=0, dst=1, vpns=(1, 2, 3, 4))
        assert net._wire_cost(ranged) == net.latency_cycles

    def test_send_counts_batched_pages(self):
        stats = Stats()
        net = Interconnect(stats)
        net.register(1, lambda msg: Message(
            "invalidate_range_ack", src=1, dst=0, vpns=msg.vpns
        ))
        net.send(Message("invalidate_range", src=0, dst=1, vpns=(1, 2, 3)))
        # Counted once per batched request, not again for the ack.
        assert stats["cluster.msg.batched_pages"] == 3


@pytest.mark.parametrize("model", MODELS)
class TestFlushBatching:
    def test_one_writeback_batch_per_owner_per_tick(self, model):
        cluster = ClusterDSM(model, nodes=3, pages=6, seed=2)
        # Node 1 (not the coordinator) takes four pages exclusive.
        for vpn in cluster.vpns[:4]:
            touch(cluster, 1, vpn, AccessType.WRITE)
            cluster.nodes[1].write_page(vpn, stamp_page(
                cluster.params.page_size, vpn
            ))
        before = cluster.stats.snapshot()
        flushed = cluster.tick()
        delta = cluster.stats.delta(before)
        assert set(flushed) >= set(cluster.vpns[:4])
        # Four exclusive pages, ONE writeback message (the batch).
        assert delta["cluster.msg.writeback_batch"] == 1
        assert delta["cluster.msg.writeback_batch_ack"] == 1
        assert delta.as_dict().get("cluster.msg.writeback", 0) == 0

    def test_batched_flush_lands_every_image_in_the_home_store(self, model):
        cluster = ClusterDSM(model, nodes=3, pages=6, seed=2)
        psize = cluster.params.page_size
        for vpn in cluster.vpns[:3]:
            touch(cluster, 1, vpn, AccessType.WRITE)
            cluster.nodes[1].write_page(vpn, stamp_page(psize, vpn + 7))
        cluster.tick()
        for vpn in cluster.vpns[:3]:
            assert cluster.home[vpn] == stamp_page(psize, vpn + 7)
            assert cluster.directory[vpn].lease_until > 0

    def test_single_page_flush_keeps_the_plain_writeback(self, model):
        cluster = ClusterDSM(model, nodes=3, pages=4, seed=2)
        touch(cluster, 1, cluster.vpns[0], AccessType.WRITE)
        before = cluster.stats.snapshot()
        cluster.tick()
        delta = cluster.stats.delta(before)
        assert delta["cluster.msg.writeback"] > 0
        assert delta.as_dict().get("cluster.msg.writeback_batch", 0) == 0


@pytest.mark.parametrize("model", MODELS)
class TestInvalidateCoalescing:
    def test_range_acquire_sends_one_invalidate_per_holder(self, model):
        cluster = ClusterDSM(model, nodes=3, pages=6, seed=2)
        # Nodes 1 and 2 each hold shared copies of four pages.
        for vpn in cluster.vpns[:4]:
            for nid in (1, 2):
                touch(cluster, nid, vpn)
        before = cluster.stats.snapshot()
        writer = cluster.nodes[1]
        cluster.get_writable_range(writer, cluster.vpns[:4])
        delta = cluster.stats.delta(before)
        # Holders 0 and 2 each give up 4 pages: 2 range messages, zero
        # per-page invalidates.
        assert delta["cluster.msg.invalidate_range"] == 2
        assert delta.as_dict().get("cluster.msg.invalidate", 0) == 0
        for vpn in cluster.vpns[:4]:
            entry = cluster.directory[vpn]
            assert entry.owner == 1
            assert cluster._valid[vpn] == {1}
            assert writer.local_rights(vpn) == Rights.RW

    def test_range_acquire_matches_per_page_end_state(self, model):
        vpn_count = 4
        ranged = ClusterDSM(model, nodes=3, pages=6, seed=2)
        looped = ClusterDSM(model, nodes=3, pages=6, seed=2)
        for cluster in (ranged, looped):
            for vpn in cluster.vpns[:vpn_count]:
                for nid in (1, 2):
                    touch(cluster, nid, vpn)
        ranged.get_writable_range(ranged.nodes[1], ranged.vpns[:vpn_count])
        for vpn in looped.vpns[:vpn_count]:
            looped.get_writable(looped.nodes[1], vpn)
        for vpn in ranged.vpns[:vpn_count]:
            left, right = ranged.directory[vpn], looped.directory[vpn]
            assert (left.owner, left.copyset, left.state) == (
                right.owner, right.copyset, right.state
            )
            assert ranged._valid[vpn] == looped._valid[vpn]
        # ...for strictly fewer messages and interconnect cycles.
        assert (
            ranged.stats["cluster.msg.sent"]
            < looped.stats["cluster.msg.sent"]
        )
        assert ranged.net.clock < looped.net.clock

    def test_single_page_acquire_keeps_the_plain_invalidate(self, model):
        cluster = ClusterDSM(model, nodes=3, pages=4, seed=2)
        touch(cluster, 1, cluster.vpns[0])
        before = cluster.stats.snapshot()
        touch(cluster, 2, cluster.vpns[0], AccessType.WRITE)
        delta = cluster.stats.delta(before)
        assert delta["cluster.msg.invalidate"] > 0
        assert delta.as_dict().get("cluster.msg.invalidate_range", 0) == 0
