"""Tests for the message vocabulary and the fault-injectable wire."""

from __future__ import annotations

import pytest

from repro.cluster.interconnect import Interconnect
from repro.cluster.messages import MESSAGE_KINDS, Message
from repro.sim.stats import Stats


class TestMessage:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Message("gossip", src=0, dst=1)

    def test_rejects_self_send(self):
        with pytest.raises(ValueError):
            Message("heartbeat", src=2, dst=2)

    def test_relay_requires_inner(self):
        with pytest.raises(ValueError):
            Message("relay", src=0, dst=1)

    def test_round_trips_through_dict(self):
        inner = Message("fetch", src=0, dst=2, vpn=0x4001)
        msg = Message(
            "relay", src=0, dst=1, inner=inner,
        )
        assert Message.from_dict(msg.to_dict()) == msg

    def test_payload_serializes_as_hex(self):
        msg = Message("fetch_reply", src=1, dst=0, vpn=3, payload=b"\x00\xff")
        data = msg.to_dict()
        assert data["payload"] == "00ff"
        assert Message.from_dict(data).payload == b"\x00\xff"

    def test_hop_rewrites_source_only(self):
        msg = Message("fetch", src=0, dst=2, vpn=7)
        hopped = msg.hop(via=1)
        assert (hopped.src, hopped.dst, hopped.vpn) == (1, 2, 7)

    def test_every_kind_constructs(self):
        for kind in MESSAGE_KINDS:
            inner = Message("probe", src=0, dst=1) if kind == "relay" else None
            Message(kind, src=0, dst=1, inner=inner)


@pytest.fixture
def net():
    return Interconnect(Stats())


def echo_handler(replies):
    def handle(message):
        return replies(message) if callable(replies) else replies

    return handle


def ack(message):
    return Message("heartbeat_ack", src=message.dst, dst=message.src)


class TestInterconnect:
    def test_reply_round_trip_charges_both_directions(self, net):
        net.register(1, ack)
        reply = net.send(Message("heartbeat", src=0, dst=1))
        assert reply.kind == "heartbeat_ack"
        assert net.stats["cluster.msg.sent"] == 2  # request + reply
        assert net.clock == 2 * net.latency_cycles

    def test_crashed_destination_times_out(self, net):
        net.register(1, ack)
        net.crash(1)
        assert net.send(Message("heartbeat", src=0, dst=1)) is None
        assert net.stats["cluster.msg.undeliverable"] == 1
        assert net.clock == net.latency_cycles + net.timeout_cycles

    def test_cut_link_times_out_but_other_links_work(self, net):
        net.register(1, ack)
        net.register(2, ack)
        net.cut(0, 1)
        assert net.send(Message("heartbeat", src=0, dst=1)) is None
        assert net.send(Message("heartbeat", src=0, dst=2)) is not None
        net.heal_all()
        assert net.send(Message("heartbeat", src=0, dst=1)) is not None

    def test_page_payload_costs_more_wire_time(self, net):
        net.register(1, ack)
        net.send(Message("heartbeat", src=0, dst=1))
        control = net.clock
        net.clock = 0
        net.send(
            Message("writeback", src=0, dst=1, vpn=1, payload=b"\x01" * 64)
        )
        assert net.clock > control

    def test_hook_drop_verdict_loses_the_message(self, net):
        seen = []
        net.register(1, ack)
        net.hook = lambda message, index: seen.append(index) or "drop"
        assert net.send(Message("heartbeat", src=0, dst=1)) is None
        assert seen == [0]
        assert net.stats["cluster.msg.dropped"] == 1

    def test_hook_dup_verdict_delivers_twice(self, net):
        calls = []
        net.register(1, lambda m: calls.append(m) or ack(m))
        net.hook = lambda message, index: "dup"
        net.send(Message("heartbeat", src=0, dst=1))
        assert len(calls) == 2
        assert net.stats["cluster.msg.duplicated"] == 1

    def test_hook_runs_before_deliverability_check(self, net):
        """A node_crash fired by the hook strands the triggering message."""
        net.register(1, ack)

        def crash_on_first(message, index):
            net.crash(message.dst)
            return None

        net.hook = crash_on_first
        assert net.send(Message("heartbeat", src=0, dst=1)) is None
        assert net.stats["cluster.msg.undeliverable"] == 1

    def test_none_reply_counts_unanswered_timeout(self, net):
        net.register(1, lambda m: None)
        assert net.send(Message("heartbeat", src=0, dst=1)) is None
        assert net.stats["cluster.msg.unanswered"] == 1

    def test_message_index_is_a_global_stream(self, net):
        net.register(1, ack)
        indices = []
        net.hook = lambda message, index: indices.append(index) or None
        for _ in range(3):
            net.send(Message("heartbeat", src=0, dst=1))
        assert indices == [0, 1, 2]
