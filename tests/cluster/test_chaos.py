"""Tests for the gold oracle, the injector and the chaos sweep."""

from __future__ import annotations

import json

import pytest

from repro.cluster.chaos import (
    GoldCluster,
    run_cluster_case,
    run_cluster_sweep,
)
from repro.cluster.dsm import ClusterDSM
from repro.cluster.faults import ClusterInjector
from repro.core.rights import AccessType
from repro.faults.plan import FaultEvent, FaultPlan
from repro.os.kernel import MODELS


class TestGoldCluster:
    def test_write_makes_one_stamp_legal(self):
        gold = GoldCluster([1])
        gold.write(0, 1, 5)
        assert gold.pages[1].allowed == {5}

    def test_cross_node_read_folds_dirty_into_durable(self):
        gold = GoldCluster([1])
        gold.write(0, 1, 5)
        gold.read(2, 1)
        page = gold.pages[1]
        assert page.durable == 5 and not page.dirty

    def test_dirty_owner_crash_allows_both_stamps(self):
        gold = GoldCluster([1])
        gold.write(0, 1, 5)
        gold.flush(1)
        gold.write(0, 1, 6)  # never flushed
        gold.crash(0)
        page = gold.pages[1]
        assert page.allowed == {5, 6}
        assert page.content == 5  # recovery restores the durable image

    def test_next_write_collapses_the_ambiguity(self):
        gold = GoldCluster([1])
        gold.write(0, 1, 5)
        gold.crash(0)
        gold.write(1, 1, 9)
        assert gold.pages[1].allowed == {9}

    def test_clean_owner_crash_stays_unambiguous(self):
        gold = GoldCluster([1])
        gold.write(0, 1, 5)
        gold.flush(1)
        gold.crash(0)
        assert gold.pages[1].allowed == {5}


class TestClusterInjector:
    def drive(self, plan, messages=6):
        cluster = ClusterDSM("plb", nodes=3, pages=4, seed=1)
        injector = ClusterInjector(plan)
        injector.arm(cluster)
        for i in range(messages):
            node = cluster.nodes[1 + (i % 2)]
            node.machine.touch(
                node.domain,
                cluster.params.vaddr(cluster.vpns[i % len(cluster.vpns)]),
                AccessType.READ,
            )
        injector.disarm()
        return cluster

    def test_msg_drop_span_counts_each_drop(self):
        plan = FaultPlan(
            events=(FaultEvent("cluster", "msg_drop", at=0, arg=2),)
        )
        cluster = self.drive(plan)
        assert cluster.stats["faults.injected.cluster.msg_drop"] == 2
        assert cluster.stats["cluster.msg.dropped"] == 2
        assert cluster.stats["cluster.retry.recovered"] >= 1

    def test_one_shot_kinds_fire_once(self):
        plan = FaultPlan(events=(FaultEvent("cluster", "msg_dup", at=0),))
        cluster = self.drive(plan)
        assert cluster.stats["faults.injected.cluster.msg_dup"] == 1
        assert cluster.stats["cluster.msg.duplicated"] == 1

    def test_node_crash_recorded_only_when_it_happened(self):
        # at=0 targets the first message's destination; a second crash
        # event later would be refused (cluster floor of two actors) and
        # must not count as injected.
        plan = FaultPlan(
            events=(
                FaultEvent("cluster", "node_crash", at=0),
                FaultEvent("cluster", "node_crash", at=1),
            )
        )
        cluster = self.drive(plan)
        assert cluster.stats["faults.injected.cluster.node_crash"] == 1
        assert cluster.stats["cluster.node_crashes"] == 1

    def test_non_cluster_events_are_ignored(self):
        plan = FaultPlan(events=(FaultEvent("cache", "mce", at=0),))
        cluster = self.drive(plan)
        assert cluster.stats.get("faults.injected", 0) == 0

    def test_armed_but_never_firing_is_zero_overhead(self):
        quiet = FaultPlan(
            events=(FaultEvent("cluster", "msg_drop", at=10_000),)
        )
        baseline = self.drive(plan=FaultPlan(events=()))
        armed = self.drive(plan=quiet)
        assert (
            armed.merged_stats().as_dict() == baseline.merged_stats().as_dict()
        )


class TestClusterCase:
    @pytest.mark.parametrize("model", MODELS)
    def test_fault_free_case_converges(self, model):
        result = run_cluster_case(model, seed=5, accesses=24)
        assert result.verdict == "converged"
        assert result.messages > 0
        assert result.plan is None

    def test_crash_case_converges_with_recovery_counters(self):
        plan = FaultPlan(
            events=(FaultEvent("cluster", "node_crash", at=6),),
            name="crash@6",
        )
        result = run_cluster_case("plb", seed=5, accesses=24, plan=plan)
        assert result.verdict == "converged"
        assert result.counters.get("faults.injected", 0) == 1
        assert result.counters.get("cluster.handoffs", 0) >= 1
        assert result.recovery_cycles

    def test_dump_is_json_and_replayable(self):
        plan = FaultPlan(
            events=(FaultEvent("cluster", "partition", at=4),),
            name="partition@4",
        )
        result = run_cluster_case("plb", seed=5, accesses=24, plan=plan)
        dump = json.loads(json.dumps(result.dump()))
        replayed = run_cluster_case(
            dump["model"], dump["seed"],
            nodes=dump["nodes"], pages=dump["pages"],
            accesses=dump["accesses"], tick_every=dump["tick_every"],
            plan=FaultPlan.from_dict(dump["plan"]),
        )
        assert replayed.verdict == result.verdict
        assert replayed.counters == result.counters


class TestClusterSweep:
    def test_thinned_sweep_converges_on_every_model(self):
        sweep = run_cluster_sweep(
            MODELS, seed=5, accesses=16, stride=7,
        )
        assert sweep.ok
        assert sweep.cases > 0
        assert sweep.converged + sweep.unrecoverable == sweep.cases
        assert set(sweep.baseline_messages) == set(MODELS)

    def test_sweep_pools_recovery_episodes_per_model(self):
        sweep = run_cluster_sweep(
            ("plb",), seed=5, accesses=16, stride=5,
            kinds=("node_crash",),
        )
        assert sweep.ok
        assert sweep.recovery_cycles.get("plb")
        assert all(c >= 0 for c in sweep.recovery_cycles["plb"])

    def test_max_steps_keeps_first_and_last(self):
        sweep = run_cluster_sweep(
            ("plb",), seed=5, accesses=16, max_steps=3,
            kinds=("node_crash",),
        )
        assert sweep.ok
        assert sweep.cases == 3
