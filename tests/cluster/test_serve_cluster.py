"""Tests for cluster serve mode: recovery SLOs under interconnect chaos."""

from __future__ import annotations

from repro.serve.driver import ServeConfig, run_serve


def cluster_config(**overrides):
    base = dict(
        duration_ms=300,
        seed=3,
        models=("plb",),
        rates={"cluster": 80.0},
        cluster_nodes=3,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestClusterServe:
    def test_fault_free_run_serves_and_stays_clean(self):
        result = run_serve(cluster_config())
        summary = result.summaries["plb"]
        assert result.unrecovered == {"plb": 0}
        assert summary["requests"] > 0
        assert summary["faults"]["injected"] == 0
        assert "cluster" not in summary  # omit-when-zero
        assert summary["cluster_recovery"]["episodes"] == 0
        assert summary["cluster_nodes"] == 3

    def test_crash_plan_injects_recovers_and_measures(self):
        result = run_serve(cluster_config(duration_ms=400, plan="cluster-crash"))
        summary = result.summaries["plb"]
        assert result.unrecovered == {"plb": 0}
        assert summary["faults"]["injected"] >= 1
        assert summary["faults"]["recovered"] >= 1
        # The cluster block surfaces the protocol's own counters...
        assert summary["cluster"]["node_deaths"] >= 1
        assert summary["cluster"]["handoffs"] >= 1
        # ...and the recovery episodes carry nonzero measured cycles.
        recovery = summary["cluster_recovery"]
        assert recovery["episodes"] >= 1
        assert recovery["cycles"]["p50"] > 0
        assert recovery["us"]["p50"] >= 1

    def test_same_seed_is_deterministic(self):
        first = run_serve(cluster_config(plan="cluster-crash"))
        second = run_serve(cluster_config(plan="cluster-crash"))
        assert first.summaries == second.summaries

    def test_single_kernel_serve_has_no_cluster_keys(self):
        config = ServeConfig(duration_ms=200, seed=1, models=("plb",))
        result = run_serve(config)
        summary = result.summaries["plb"]
        assert "cluster" not in summary
        assert "cluster_recovery" not in summary
        assert "cluster_nodes" not in summary
