"""Tests for failure detection, handoff, partitions and rejoin."""

from __future__ import annotations

import pytest

from repro.cluster.dsm import HEARTBEAT_MISS_LIMIT, ClusterDSM
from repro.cluster.node import stamp_page
from repro.core.rights import AccessType
from repro.os.kernel import MODELS
from repro.workloads.dsm import CopyState


@pytest.fixture(params=MODELS)
def cluster(request):
    return ClusterDSM(request.param, nodes=4, pages=4, seed=3)


def touch(cluster, node_id, vpn, access=AccessType.READ):
    node = cluster.nodes[node_id]
    node.machine.touch(node.domain, cluster.params.vaddr(vpn), access)
    return node


class TestCrashDetection:
    def test_crash_is_ground_truth_until_detected(self, cluster):
        assert cluster.crash_node(3)
        assert 3 in cluster.net.crashed
        assert cluster.nodes[3].alive  # belief unchanged so far
        assert 3 in cluster.live

    def test_heartbeats_declare_a_silent_node_dead(self, cluster):
        cluster.crash_node(3)
        for _ in range(HEARTBEAT_MISS_LIMIT + 1):
            cluster.tick()
        assert 3 in cluster.dead
        assert not cluster.nodes[3].alive
        assert cluster.stats["cluster.node_deaths"] == 1
        assert not cluster.split_brain_risk
        assert cluster.recovery_cycles  # the episode was measured

    def test_crash_refuses_below_two_running_nodes(self, cluster):
        assert cluster.crash_node(3)
        assert cluster.crash_node(2)
        assert not cluster.crash_node(1)
        assert cluster.stats["faults.skipped"] == 1

    def test_rpc_timeout_triggers_immediate_declaration(self, cluster):
        vpn = cluster.vpns[0]
        touch(cluster, 3, vpn, AccessType.WRITE)
        cluster.crash_node(3)
        # Reading from node 0 must fetch from the dead owner, time out,
        # declare it dead, hand the page off, and still succeed.
        touch(cluster, 0, vpn)
        assert 3 in cluster.dead
        assert cluster.stats["cluster.retries"] > 0
        assert cluster.stats["cluster.handoffs"] >= 1


class TestHandoff:
    def test_dirty_owner_crash_restores_the_flushed_image(self, cluster):
        vpn = cluster.vpns[0]
        psize = cluster.params.page_size
        writer = touch(cluster, 3, vpn, AccessType.WRITE)
        writer.write_page(vpn, stamp_page(psize, 7))
        cluster.tick()  # flush: stamp 7 is durable
        writer.write_page(vpn, stamp_page(psize, 8))  # never flushed
        cluster.crash_node(3)
        for _ in range(HEARTBEAT_MISS_LIMIT + 1):
            cluster.tick()
        entry = cluster.directory[vpn]
        assert entry.owner in cluster.live
        assert entry.state is CopyState.SHARED
        reader = touch(cluster, 0, vpn)
        assert reader.stamp(vpn) == 7  # the unflushed write is lost

    def test_surviving_copy_holder_inherits_ownership(self, cluster):
        vpn = cluster.vpns[1]
        touch(cluster, 3, vpn, AccessType.WRITE)
        touch(cluster, 1, vpn)  # demotes: node 1 holds a valid copy
        cluster.crash_node(3)
        for _ in range(HEARTBEAT_MISS_LIMIT + 1):
            cluster.tick()
        assert cluster.directory[vpn].owner == 1

    def test_coordinator_death_elects_a_successor(self, cluster):
        cluster.crash_node(0)
        for _ in range(HEARTBEAT_MISS_LIMIT + 1):
            cluster.tick()
        assert cluster.coordinator_id == min(cluster.live)
        assert cluster.stats["cluster.elections"] == 1


class TestPartition:
    def test_cut_link_is_detected_as_partition_not_death(self, cluster):
        vpn = cluster.vpns[0]
        touch(cluster, 1, vpn, AccessType.WRITE)
        cluster.net.cut(2, 1)
        touch(cluster, 2, vpn)  # must reach node 1 the long way round
        assert not cluster.dead
        assert cluster.stats["cluster.partitions.detected"] == 1
        assert cluster.stats["cluster.relayed"] >= 1
        assert cluster.stats["faults.recovered"] >= 1

    def test_heal_clears_partition_hints(self, cluster):
        cluster.net.cut(0, 1)
        cluster._partitioned.add(frozenset((0, 1)))
        cluster.heal_all()
        assert not cluster.net.partitions
        assert not cluster._partitioned
        assert cluster.stats["cluster.partitions.healed"] == 1


class TestRejoin:
    def test_rejoined_node_serves_reads_again(self, cluster):
        vpn = cluster.vpns[0]
        cluster.crash_node(3)
        for _ in range(HEARTBEAT_MISS_LIMIT + 1):
            cluster.tick()
        cluster.rejoin(3)
        assert 3 not in cluster.dead
        assert cluster.nodes[3].alive
        reader = touch(cluster, 3, vpn)
        assert reader.stamp(vpn) is not None
        assert cluster.stats["cluster.rejoins"] == 1

    def test_rejoining_a_live_member_is_rejected(self, cluster):
        from repro.faults.errors import ClusterConfigError

        with pytest.raises(ClusterConfigError):
            cluster.rejoin(1)

    def test_auto_rejoin_on_tick(self):
        cluster = ClusterDSM("plb", nodes=4, pages=4, seed=3, auto_rejoin=True)
        cluster.crash_node(3)
        for _ in range(HEARTBEAT_MISS_LIMIT + 2):
            cluster.tick()
        assert 3 not in cluster.dead
        assert cluster.nodes[3].alive
