"""Chaos harness end-to-end: recoverable plans converge, corrupted
authority is detected, and the failure dump replays byte-identically."""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan
from repro.faults.chaos import run_chaos
from repro.os.kernel import MODELS

RECOVERABLE_PRESETS = ("disk", "bitrot", "mce", "shootdown", "flaky-plb", "mixed")


class TestRecoverablePlans:
    @pytest.mark.parametrize("model", MODELS)
    def test_mixed_plan_converges_to_gold(self, model):
        result = run_chaos("fuzz", model, 0, plan="mixed")
        assert result.ok, result.divergence and result.divergence.describe()
        assert result.counters.get("faults.injected", 0) >= 1
        assert result.refs_checked > 0

    @pytest.mark.parametrize("preset", RECOVERABLE_PRESETS)
    def test_every_recoverable_preset_converges_on_plb(self, preset):
        result = run_chaos("fuzz", "plb", 0, plan=preset)
        assert result.ok, result.divergence and result.divergence.describe()

    def test_disk_preset_converges_under_paging_pressure(self):
        # The paging scenario generates real disk traffic, so the
        # disk-site events actually fire.
        result = run_chaos("paging", "plb", 0, plan="disk")
        assert result.ok
        assert result.counters.get("faults.injected", 0) >= 1

    @pytest.mark.parametrize("model", MODELS)
    def test_no_plan_run_is_clean(self, model):
        result = run_chaos("fuzz", model, 0, plan=None)
        assert result.ok
        assert result.counters.get("faults.injected", 0) == 0
        assert result.counters.get("scrub.repairs", 0) == 0


class TestUnrecoverableDivergence:
    # Some seeds legitimately heal (a later rights op overwrites the
    # corrupted cell before the end-state sweep), so the pinned seeds
    # are ones where the corruption is verified to survive.
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_corrupted_authority_is_detected(self, model, seed):
        result = run_chaos("fuzz", model, seed, plan="unrecoverable")
        assert not result.ok
        assert result.divergence is not None

    def test_failure_dump_is_replayable_json(self):
        result = run_chaos("fuzz", "plb", 1, plan="unrecoverable")
        assert not result.ok
        dump = json.loads(json.dumps(result.dump()))
        assert dump["scenario"] == "fuzz"
        assert dump["model"] == "plb"
        assert dump["seed"] == 1
        assert dump["divergence"]["kind"]
        assert dump["span_trail"]
        # Replaying the dumped plan reproduces the same divergence.
        replayed = run_chaos(
            "fuzz", "plb", 1, plan=FaultPlan.from_dict(dump["plan"])
        )
        assert not replayed.ok
        assert replayed.divergence.kind == result.divergence.kind
        assert replayed.divergence.op_index == result.divergence.op_index
        assert replayed.divergence.expected == result.divergence.expected


class TestDeterminism:
    def test_same_seed_same_counters(self):
        a = run_chaos("fuzz", "pagegroup", 3, plan="mixed")
        b = run_chaos("fuzz", "pagegroup", 3, plan="mixed")
        assert a.ok == b.ok
        assert a.counters == b.counters
        assert a.ops_total == b.ops_total
        assert a.refs_checked == b.refs_checked


class TestSMPChaos:
    @pytest.mark.parametrize("model", MODELS)
    def test_shootdown_plan_converges_on_four_cpus(self, model):
        """Dropped/delayed shootdowns on a real multiprocessor: the
        scrubber must repair every CPU's stale state before the per-CPU
        end-state sweep audits it against gold."""
        result = run_chaos(
            "fuzz", model, 0, plan="shootdown", n_ops=80, n_cpus=4
        )
        assert result.ok, result.divergence and result.divergence.describe()
        assert result.n_cpus == 4

    def test_smp_run_is_deterministic(self):
        a = run_chaos("fuzz", "plb", 5, plan="mixed", n_ops=80, n_cpus=3)
        b = run_chaos("fuzz", "plb", 5, plan="mixed", n_ops=80, n_cpus=3)
        assert a.ok == b.ok
        assert a.counters == b.counters
        assert a.refs_checked == b.refs_checked

    def test_dump_records_the_cpu_count(self):
        result = run_chaos(
            "fuzz", "plb", 1, plan="unrecoverable", n_cpus=2
        )
        assert not result.ok
        assert json.loads(json.dumps(result.dump()))["n_cpus"] == 2
