"""Recovery paths: scrubbing, machine checks, degradation, disk retries."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.faults import FaultEvent, FaultInjector, FaultPlan, MachineCheck
from repro.faults.scrub import Scrubber
from repro.os.kernel import MCE_DEGRADE_THRESHOLD, Kernel, SegmentationViolation
from repro.os.pager import UserLevelPager
from repro.sim.machine import Machine


def cached_setup(model: str):
    """A kernel with one RW page whose protection entry is cached."""
    kernel = Kernel(model)
    machine = Machine(kernel)
    domain = kernel.create_domain("app")
    segment = kernel.create_segment("data", 2)
    kernel.attach(domain, segment, Rights.RW)
    vaddr = kernel.params.vaddr(segment.base_vpn)
    machine.write(domain, vaddr)
    return kernel, machine, domain, segment, vaddr


class TestScrubber:
    def test_plb_rights_corruption_repaired_in_place(self):
        kernel, machine, domain, segment, vaddr = cached_setup("plb")
        for _, entry in kernel.system.plb.items():
            entry.rights = Rights.NONE
        repairs = Scrubber(kernel).scrub()
        assert repairs >= 1
        assert not machine.write(domain, vaddr).faulted
        assert kernel.stats["scrub.repairs"] == repairs
        assert kernel.stats["scrub.runs"] == 1

    def test_pagegroup_aid_corruption_repaired(self):
        kernel, machine, domain, segment, vaddr = cached_setup("pagegroup")
        for _, entry in kernel.system.tlb.items():
            entry.aid = entry.aid + 7
        repairs = Scrubber(kernel).scrub()
        assert repairs >= 1
        assert not machine.write(domain, vaddr).faulted

    def test_conventional_rights_corruption_repaired(self):
        kernel, machine, domain, segment, vaddr = cached_setup("conventional")
        for _, entry in kernel.system.tlb.items():
            entry.rights = Rights.NONE
        repairs = Scrubber(kernel).scrub()
        assert repairs >= 1
        assert not machine.write(domain, vaddr).faulted

    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_clean_caches_need_no_repairs(self, model):
        kernel, machine, domain, segment, vaddr = cached_setup(model)
        assert Scrubber(kernel).scrub() == 0
        assert kernel.stats.get("scrub.repairs", 0) == 0

    def test_repairs_are_not_kernel_maintenance_traffic(self):
        kernel, machine, domain, segment, vaddr = cached_setup("plb")
        for _, entry in kernel.system.plb.items():
            entry.rights = Rights.READ
        invalidations_before = kernel.stats.get("plb.invalidate", 0)
        Scrubber(kernel).scrub()
        assert kernel.stats.get("plb.invalidate", 0) == invalidations_before


class TestMachineCheck:
    def test_handler_flushes_and_rebuilds_from_authority(self):
        kernel, machine, domain, segment, vaddr = cached_setup("plb")
        for _, entry in kernel.system.plb.items():
            entry.rights = Rights.NONE
        kernel.handle_machine_check(MachineCheck("plb", detail="test"))
        # The corrupt entry is gone; the access refaults and refills
        # from the attachment tables.
        assert not machine.write(domain, vaddr).faulted
        assert kernel.stats["kernel.fault.machine_check"] == 1
        assert kernel.stats["faults.recovered"] == 1

    def test_repeated_machine_checks_degrade_the_structure(self):
        kernel, machine, domain, segment, vaddr = cached_setup("plb")
        for _ in range(MCE_DEGRADE_THRESHOLD):
            kernel.handle_machine_check(MachineCheck("plb"))
        assert kernel.system.plb.disabled
        assert kernel.stats["kernel.degraded.plb"] == 1
        # Degraded mode still enforces protection via table walks.
        assert not machine.write(domain, vaddr).faulted
        assert kernel.stats["plb.disabled_walk"] >= 1
        other = kernel.create_domain("other")
        with pytest.raises(SegmentationViolation):
            machine.write(other, vaddr)

    def test_degrade_event_disables_the_structure(self):
        kernel, machine, domain, segment, vaddr = cached_setup("plb")
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("cache", "degrade", at=0, arg=1),))
        )
        injector.arm(kernel)
        injector.tick(0)
        assert kernel.system.tlb.disabled
        assert not machine.write(domain, vaddr).faulted
        injector.disarm()


class TestPagerRetry:
    def test_transient_read_errors_retried_with_backoff(self):
        kernel = Kernel("plb")
        pager = UserLevelPager(kernel)
        domain = kernel.create_domain("app")
        segment = kernel.create_segment("data", 2)
        kernel.attach(domain, segment, Rights.RW)
        vpn = segment.base_vpn
        pfn = kernel.translations.pfn_for(vpn)
        kernel.memory.write_page(pfn, b"precious" + bytes(32))
        pager.page_out(vpn)
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("disk", "transient_read", at=0, arg=2),))
        )
        injector.arm(kernel)
        pager.page_in(vpn)
        injector.disarm()
        assert kernel.stats["disk.retries"] == 2
        assert kernel.stats["disk.backoff_slots"] == 3  # 1 + 2, exponential
        assert kernel.stats["faults.recovered"] == 1
        new_pfn = kernel.translations.pfn_for(vpn)
        assert kernel.memory.read_page(new_pfn).startswith(b"precious")

    def test_unrecoverable_corruption_degrades_to_zero_fill(self):
        kernel = Kernel("plb")
        pager = UserLevelPager(kernel)
        domain = kernel.create_domain("app")
        segment = kernel.create_segment("data", 2)
        kernel.attach(domain, segment, Rights.RW)
        vpn = segment.base_vpn
        pager.page_out(vpn)
        kernel.backing._pages[vpn] = b"permanently rotten"
        pager.page_in(vpn)
        assert kernel.stats["pager.data_loss"] == 1
        new_pfn = kernel.translations.pfn_for(vpn)
        assert kernel.memory.read_page(new_pfn) == bytes(kernel.params.page_size)

    def test_write_failure_leaves_page_resident_and_accessible(self):
        from repro.faults.errors import DiskError

        kernel = Kernel("plb")
        machine = Machine(kernel)
        pager = UserLevelPager(kernel)
        domain = kernel.create_domain("app")
        segment = kernel.create_segment("data", 2)
        kernel.attach(domain, segment, Rights.RW)
        vpn = segment.base_vpn
        vaddr = kernel.params.vaddr(vpn)
        machine.write(domain, vaddr)
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("disk", "transient_write", at=0, arg=99),))
        )
        injector.arm(kernel)
        with pytest.raises(DiskError):
            pager.page_out(vpn)
        injector.disarm()
        assert kernel.translations.is_resident(vpn)
        assert vpn not in pager.evicted_pages
        assert not machine.write(domain, vaddr).faulted
