"""The intent journal: commit protocol and the full crash-point sweep."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.faults.journal import IntentJournal, SimulatedCrash
from repro.os.kernel import Kernel


def journaled_setup():
    kernel = Kernel("plb")
    journal = IntentJournal(kernel)
    domain = kernel.create_domain("app")
    segment = kernel.create_segment("data", 2)
    kernel.attach(domain, segment, Rights.RW)
    other = kernel.create_segment("other", 2)
    return kernel, journal, domain, segment, other


class TestProtocol:
    def test_committed_verb_retires_and_recover_is_noop(self):
        kernel, journal, domain, segment, other = journaled_setup()
        boundaries, _ = journal.run(
            "attach",
            lambda: kernel.attach(domain, other, Rights.READ),
            other.vpns(),
        )
        assert boundaries >= 2  # begin + at least pre_commit
        record = journal.records[-1]
        assert record.committed and not record.aborted
        assert record.steps[0] == "begin"
        assert record.steps[-1] == "pre_commit"
        assert journal.recover() is False
        assert domain.attachments[other.seg_id] == Rights.READ

    def test_crash_rolls_attach_back(self):
        kernel, journal, domain, segment, other = journaled_setup()
        with pytest.raises(SimulatedCrash):
            journal.run(
                "attach",
                lambda: kernel.attach(domain, other, Rights.READ),
                other.vpns(),
                crash_at=2,
            )
        assert journal.open_record is not None
        assert journal.recover() is True
        assert other.seg_id not in domain.attachments
        assert kernel.stats["journal.recover"] == 1
        assert kernel.stats["faults.recovered"] == 1

    def test_simulated_crash_is_not_an_exception(self):
        # A real crash does not run `except Exception` cleanup; the
        # sentinel must not be swallowable by in-verb rollback code.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)

    def test_nested_journaled_verbs_rejected(self):
        kernel, journal, domain, segment, other = journaled_setup()

        def nested():
            journal.run("attach", lambda: None, ())

        with pytest.raises(RuntimeError, match="already open"):
            journal.run("outer", nested, ())

    def test_record_serializes(self):
        kernel, journal, domain, segment, other = journaled_setup()
        journal.run(
            "attach",
            lambda: kernel.attach(domain, other, Rights.READ),
            other.vpns(),
        )
        dumped = journal.records[-1].to_dict()
        assert dumped["verb"] == "attach"
        assert dumped["committed"] is True
        assert dumped["steps"][0] == "begin"


class TestCrashSweep:
    """Every journaled verb, crashed at every boundary, on every model.

    This is the PR's central crash-consistency guarantee: after
    recovery the authoritative fingerprint (residency, page data, disk
    images, group assignments, attachment tables, the full rights
    matrix) is byte-identical to the pre-verb state.
    """

    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_all_crash_points_recover(self, model):
        from repro.faults.chaos import run_crash_recover

        result = run_crash_recover((model,))
        assert result.failures == []
        assert result.cases >= 4  # attach, detach, page_out, page_in
        assert result.crash_points > result.cases  # multi-boundary verbs

    def test_pagegroup_sweep_covers_group_verbs(self):
        from repro.faults.chaos import run_crash_recover

        result = run_crash_recover(("pagegroup",))
        assert result.cases == 6  # + revoke_group, move_page_to_group
        assert result.failures == []
