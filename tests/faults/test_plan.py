"""Fault plans: validation, serialization, and seeded determinism."""

from __future__ import annotations

import pytest

from repro.faults import PRESETS, FaultEvent, FaultPlan
from repro.faults.plan import PRESET_SUMMARIES, preset_catalog


class TestFaultEvent:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultEvent("ram", "bitrot", at=0)

    def test_kind_must_match_site(self):
        with pytest.raises(ValueError, match="invalid for site"):
            FaultEvent("disk", "mce", at=0)

    def test_round_trip(self):
        event = FaultEvent("shootdown", "delay", at=7, arg=3)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_from_dict_defaults_arg(self):
        event = FaultEvent.from_dict({"site": "disk", "kind": "bitrot", "at": 2})
        assert event.arg == 1


class TestFaultPlan:
    def test_round_trip(self):
        plan = FaultPlan.generate("mixed", seed=3, n_ops=64)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_generate_is_deterministic(self):
        a = FaultPlan.generate("mixed", seed=5, n_ops=100)
        b = FaultPlan.generate("mixed", seed=5, n_ops=100)
        assert a == b

    def test_different_seeds_differ(self):
        plans = {FaultPlan.generate("mixed", seed=s, n_ops=100) for s in range(8)}
        assert len(plans) > 1

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown fault preset"):
            FaultPlan.generate("gamma-rays", seed=0)

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_every_preset_generates_valid_events(self, preset):
        plan = FaultPlan.generate(preset, seed=0, n_ops=64)
        assert plan.name == preset
        assert plan.events  # constructing FaultEvent already validated them

    def test_unrecoverable_preset_targets_authority(self):
        plan = FaultPlan.generate("unrecoverable", seed=0, n_ops=64)
        assert all(event.site == "authority" for event in plan.events)

    def test_cluster_presets_target_the_cluster_site(self):
        for preset in ("cluster-lossy", "cluster-crash", "cluster-partition"):
            plan = FaultPlan.generate(preset, seed=0, n_ops=64)
            assert all(event.site == "cluster" for event in plan.events)


class TestPresetCatalog:
    def test_summaries_cover_exactly_the_presets(self):
        # The docstring catalog is generated from PRESET_SUMMARIES; this
        # pin keeps it in lockstep with the PRESETS registry.
        assert set(PRESET_SUMMARIES) == set(PRESETS)

    def test_catalog_lists_every_preset(self):
        catalog = preset_catalog()
        for name in PRESETS:
            assert name in catalog
