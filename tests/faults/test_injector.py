"""The fault injector: zero overhead when idle, faults where scheduled."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    TransientDiskError,
)
from repro.os.kernel import MODELS, Kernel, SegmentationViolation
from repro.os.pager import UserLevelPager
from repro.sim.machine import Machine


def small_run(kernel):
    """A deterministic mixed workload: references, verbs, paging."""
    pager = UserLevelPager(kernel)
    machine = Machine(kernel)
    domain = kernel.create_domain("app")
    other = kernel.create_domain("other")
    segment = kernel.create_segment("data", 6)
    kernel.attach(domain, segment, Rights.RW)
    kernel.attach(other, segment, Rights.READ)
    for vpn in segment.vpns():
        machine.write(domain, kernel.params.vaddr(vpn))
    pager.page_out(segment.base_vpn)
    pager.page_in(segment.base_vpn)
    kernel.set_rights_all_domains(segment.base_vpn + 1, Rights.READ)
    for vpn in segment.vpns():
        machine.read(other, kernel.params.vaddr(vpn))
    kernel.detach(other, segment)
    return kernel.stats


class TestZeroOverheadWhenOff:
    @pytest.mark.parametrize("model", MODELS)
    def test_armed_idle_injector_leaves_stats_byte_identical(self, model):
        baseline = small_run(Kernel(model, n_frames=32))

        kernel = Kernel(model, n_frames=32)
        injector = FaultInjector(FaultPlan(events=()))
        injector.arm(kernel)
        for index in range(64):
            injector.tick(index)
        observed = small_run(kernel)
        injector.disarm()

        assert list(observed.items()) == list(baseline.items())

    @pytest.mark.parametrize("model", MODELS)
    def test_disarm_unhooks_the_shootdown_bus(self, model):
        """Arming hooks the bus (no method wrapping); disarm restores it."""
        kernel = Kernel(model, n_frames=32)
        injector = FaultInjector(FaultPlan(events=()))
        assert kernel.bus.hook is None
        injector.arm(kernel)
        assert kernel.bus.hook is not None
        injector.disarm()
        assert kernel.bus.hook is None
        assert kernel.backing.injector is None

    def test_second_injector_cannot_steal_the_bus(self):
        kernel = Kernel("plb", n_frames=32)
        first = FaultInjector(FaultPlan(events=()))
        first.arm(kernel)
        second = FaultInjector(FaultPlan(events=()))
        with pytest.raises(RuntimeError):
            second.arm(kernel)
        first.disarm()


class TestDiskSite:
    def test_transient_write_fires_at_indexed_op(self):
        kernel = Kernel("plb")
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("disk", "transient_write", at=1),))
        )
        injector.arm(kernel)
        kernel.backing.write(0x10, b"first ok")
        with pytest.raises(TransientDiskError):
            kernel.backing.write(0x11, b"second fails")
        kernel.backing.write(0x12, b"third ok")
        assert kernel.stats["faults.injected"] == 1

    def test_transient_read_arg_spans_consecutive_reads(self):
        kernel = Kernel("plb")
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("disk", "transient_read", at=0, arg=2),))
        )
        injector.arm(kernel)
        kernel.backing.write(0x10, b"data")
        for _ in range(2):
            with pytest.raises(TransientDiskError):
                kernel.backing.read(0x10)
        assert kernel.backing.read(0x10) == b"data"

    def test_bitrot_flips_exactly_one_bit(self):
        from repro.faults.errors import CorruptPageError

        kernel = Kernel("plb")
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("disk", "bitrot", at=0),), seed=4)
        )
        injector.arm(kernel)
        kernel.backing.write(0x10, bytes(64))
        with pytest.raises(CorruptPageError):
            kernel.backing.read(0x10)
        # The stored image itself is untouched; re-reads succeed.
        assert kernel.backing.read(0x10) == bytes(64)

    def test_torn_write_caught_by_checksum_on_read(self):
        from repro.faults.errors import CorruptPageError

        kernel = Kernel("plb")
        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("disk", "torn_write", at=0),))
        )
        injector.arm(kernel)
        kernel.backing.write(0x10, b"full page image")
        with pytest.raises(CorruptPageError):
            kernel.backing.read(0x10)


class TestShootdownSite:
    def test_dropped_shootdown_leaves_stale_rights_until_scrub(self):
        from repro.faults.scrub import Scrubber

        kernel = Kernel("plb")
        machine = Machine(kernel)
        domain = kernel.create_domain("app")
        segment = kernel.create_segment("data", 2)
        kernel.attach(domain, segment, Rights.RW)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.write(domain, vaddr)  # caches RW in the PLB

        injector = FaultInjector(
            FaultPlan(events=(FaultEvent("shootdown", "drop", at=0, arg=99),))
        )
        injector.arm(kernel)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.NONE)
        # The revocation's shootdown was swallowed: the stale PLB entry
        # still grants write.
        assert not machine.write(domain, vaddr).faulted
        repairs = Scrubber(kernel).scrub()
        assert repairs >= 1
        with pytest.raises(SegmentationViolation):
            machine.write(domain, vaddr)


class TestShootdownBatchStream:
    """Range shootdowns occupy ONE index in the injector's shootdown
    stream per target CPU — a batch is a single interception unit."""

    def staged_smp(self, n_cpus: int = 3):
        from repro.core.rights import AccessType
        from repro.sim.machine import SMPMachine

        kernel = Kernel("plb", n_frames=64, n_cpus=n_cpus)
        domain = kernel.create_domain("app")
        segment = kernel.create_segment("data", 4)
        kernel.attach(domain, segment, Rights.RW)
        smp = SMPMachine(kernel)
        for cpu in range(n_cpus):
            for vpn in segment.vpns():
                smp.touch_on(cpu, domain, kernel.params.vaddr(vpn),
                             AccessType.WRITE)
        kernel.set_current_cpu(0)
        return kernel, domain, segment, smp

    def test_batch_counts_once_per_cpu_in_the_fault_stream(self):
        kernel, domain, segment, _smp = self.staged_smp()
        injector = FaultInjector(FaultPlan(events=()))
        injector.arm(kernel)
        kernel.set_pages_rights_all_domains(list(segment.vpns()), Rights.READ)
        injector.disarm()
        # 1 local + 2 remote batch messages: 3 stream slots, not 12
        # per-page slots — plan indices address whole batches.
        assert injector._invalidations == 3

    def test_drop_arg_one_loses_exactly_one_cpus_batch(self):
        from repro.core.rights import AccessType

        kernel, domain, segment, smp = self.staged_smp()
        # Index 0 is the local delivery; index 1 is CPU 1's batch.
        injector = FaultInjector(FaultPlan(
            events=(FaultEvent("shootdown", "drop", at=1, arg=1),)
        ))
        injector.arm(kernel)
        kernel.set_pages_rights_all_domains(list(segment.vpns()), Rights.READ)
        injector.disarm()
        vaddr = kernel.params.vaddr(segment.base_vpn)
        # CPU 1 lost its whole batch and still grants write; CPU 2's
        # batch (stream index 2) was delivered and revokes.
        assert not smp.touch_on(1, domain, vaddr, AccessType.WRITE).faulted
        with pytest.raises(SegmentationViolation):
            smp.touch_on(2, domain, vaddr, AccessType.WRITE)
