"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import MachineParams
from repro.core.rights import Rights
from repro.os.kernel import Kernel, MODELS
from repro.sim.machine import Machine


@pytest.fixture
def params() -> MachineParams:
    return MachineParams()


@pytest.fixture(params=MODELS)
def any_model(request) -> str:
    """Parameterize a test over all three memory-system models."""
    return request.param


@pytest.fixture
def kernel(any_model: str) -> Kernel:
    """A kernel of each model in turn."""
    return Kernel(any_model)


@pytest.fixture
def plb_kernel() -> Kernel:
    return Kernel("plb")


@pytest.fixture
def pagegroup_kernel() -> Kernel:
    return Kernel("pagegroup")


@pytest.fixture
def conventional_kernel() -> Kernel:
    return Kernel("conventional")


@pytest.fixture
def machine(kernel: Kernel) -> Machine:
    return Machine(kernel)


def make_attached_segment(kernel: Kernel, n_pages: int = 8, rights: Rights = Rights.RW):
    """Helper: one domain attached to one fresh segment."""
    domain = kernel.create_domain("test-domain")
    segment = kernel.create_segment("test-segment", n_pages)
    kernel.attach(domain, segment, rights)
    return domain, segment
