"""Tests for the round-robin domain scheduler."""

from __future__ import annotations

import pytest

from repro.os.kernel import Kernel
from repro.os.scheduler import RoundRobinScheduler


def make_sched(model="plb", n=3):
    kernel = Kernel(model)
    domains = [kernel.create_domain(f"d{i}") for i in range(n)]
    return kernel, domains, RoundRobinScheduler(kernel, domains)


class TestRoundRobin:
    def test_rotation_order(self):
        kernel, domains, sched = make_sched()
        seen = [sched.next() for _ in range(6)]
        assert seen == domains + domains

    def test_next_switches_hardware_domain(self):
        kernel, domains, sched = make_sched()
        sched.next()
        assert kernel.system.current_domain == domains[0].pd_id

    def test_run_to_specific_domain(self):
        kernel, domains, sched = make_sched()
        sched.run_to(domains[2])
        assert kernel.system.current_domain == domains[2].pd_id
        assert sched.current is domains[2]
        # Rotation continues from there.
        assert sched.next() is domains[0]

    def test_run_to_unscheduled_domain_rejected(self):
        kernel, domains, sched = make_sched()
        stranger = kernel.create_domain("stranger")
        with pytest.raises(ValueError):
            sched.run_to(stranger)

    def test_requires_domains(self):
        kernel = Kernel("plb")
        with pytest.raises(ValueError):
            RoundRobinScheduler(kernel, [])

    def test_switch_costs_counted(self):
        kernel, domains, sched = make_sched()
        before = kernel.stats.snapshot()
        for _ in range(4):
            sched.next()
        delta = kernel.stats.delta(before)
        assert delta["domain_switch"] == 4
        assert delta["pdid.write"] == 4
