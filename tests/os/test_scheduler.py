"""Tests for the round-robin domain scheduler."""

from __future__ import annotations

import pytest

from repro.os.kernel import Kernel
from repro.os.scheduler import RoundRobinScheduler


def make_sched(model="plb", n=3):
    kernel = Kernel(model)
    domains = [kernel.create_domain(f"d{i}") for i in range(n)]
    return kernel, domains, RoundRobinScheduler(kernel, domains)


class TestRoundRobin:
    def test_rotation_order(self):
        kernel, domains, sched = make_sched()
        seen = [sched.next() for _ in range(6)]
        assert seen == domains + domains

    def test_next_switches_hardware_domain(self):
        kernel, domains, sched = make_sched()
        sched.next()
        assert kernel.system.current_domain == domains[0].pd_id

    def test_run_to_specific_domain(self):
        kernel, domains, sched = make_sched()
        sched.run_to(domains[2])
        assert kernel.system.current_domain == domains[2].pd_id
        assert sched.current is domains[2]
        # Rotation continues from there.
        assert sched.next() is domains[0]

    def test_run_to_unscheduled_domain_rejected(self):
        kernel, domains, sched = make_sched()
        stranger = kernel.create_domain("stranger")
        with pytest.raises(ValueError):
            sched.run_to(stranger)

    def test_requires_domains(self):
        kernel = Kernel("plb")
        with pytest.raises(ValueError):
            RoundRobinScheduler(kernel, [])

    def test_switch_costs_counted(self):
        kernel, domains, sched = make_sched()
        before = kernel.stats.snapshot()
        for _ in range(4):
            sched.next()
        delta = kernel.stats.delta(before)
        assert delta["domain_switch"] == 4
        assert delta["pdid.write"] == 4


class TestRunToContract:
    def test_error_message_names_the_domain(self):
        kernel, domains, sched = make_sched()
        stranger = kernel.create_domain("stranger")
        with pytest.raises(ValueError, match="stranger is not scheduled here"):
            sched.run_to(stranger)

    def test_lookup_is_by_identity_not_just_pd_id(self):
        """A foreign domain object must not resolve via a stale map."""
        kernel, domains, sched = make_sched()
        impostor = type(domains[0]).__new__(type(domains[0]))
        impostor.__dict__.update(domains[0].__dict__)
        impostor.name = "impostor"
        with pytest.raises(ValueError, match="impostor is not scheduled here"):
            sched.run_to(impostor)

    def test_run_to_scales_without_scanning(self):
        """The O(1) map answers directly — same result at any position."""
        kernel = Kernel("plb")
        domains = [kernel.create_domain(f"d{i}") for i in range(64)]
        sched = RoundRobinScheduler(kernel, domains)
        sched.run_to(domains[-1])
        assert sched.current is domains[-1]
        assert kernel.system.current_domain == domains[-1].pd_id


class TestAffinityScheduler:
    def make_affine(self, model="plb", n_domains=4, n_cpus=2, placement=None):
        from repro.os.scheduler import AffinityScheduler

        kernel = Kernel(model, n_frames=64, n_cpus=n_cpus)
        domains = [kernel.create_domain(f"d{i}") for i in range(n_domains)]
        sched = AffinityScheduler(kernel, domains, placement=placement)
        return kernel, domains, sched

    def test_round_robin_initial_placement(self):
        kernel, domains, sched = self.make_affine()
        assert [sched.cpu_for(d) for d in domains] == [0, 1, 0, 1]
        assert sched.domains_on(0) == [domains[0], domains[2]]

    def test_placement_override(self):
        kernel, domains, sched = self.make_affine(
            placement={1: 0}  # pd_id 1 is domains[0] (pd 0 is the kernel's)
        )
        cpus = {sched.cpu_for(d) for d in domains}
        assert cpus <= {0, 1}

    def test_next_on_rotates_only_that_cpus_queue(self):
        kernel, domains, sched = self.make_affine()
        seen = [sched.next_on(0) for _ in range(4)]
        assert seen == [domains[0], domains[2], domains[0], domains[2]]
        assert kernel.current_cpu == 0

    def test_run_to_switches_on_the_home_cpu(self):
        kernel, domains, sched = self.make_affine()
        sched.run_to(domains[1])
        assert kernel.current_cpu == 1
        assert kernel.system.current_domain == domains[1].pd_id

    def test_unplaced_domain_rejected_with_contract_message(self):
        kernel, domains, sched = self.make_affine()
        stranger = kernel.create_domain("stranger")
        with pytest.raises(ValueError, match="stranger is not scheduled here"):
            sched.cpu_for(stranger)

    def test_migrate_same_cpu_is_free(self):
        kernel, domains, sched = self.make_affine()
        assert sched.migrate(domains[0], 0) == 0
        assert kernel.stats["sched.migrations"] == 0

    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_migrate_charges_the_models_refill_cost(self, model):
        from repro.core.rights import AccessType, Rights
        from repro.sim.machine import SMPMachine

        kernel, domains, sched = self.make_affine(model=model)
        segment = kernel.create_segment("data", 4)
        kernel.attach(domains[0], segment, Rights.RW)
        smp = SMPMachine(kernel)
        for vpn in segment.vpns():
            smp.touch_on(0, domains[0], kernel.params.vaddr(vpn),
                         AccessType.WRITE)
        refill = sched.migrate(domains[0], 1)
        assert sched.cpu_for(domains[0]) == 1
        assert kernel.stats["sched.migrations"] == 1
        assert kernel.stats["sched.migration.refill_entries"] == refill
        # The old CPU warmed 4 pages of protection state for the
        # domain; moving it strands (and therefore charges) entries.
        if model in ("plb", "conventional"):
            assert refill >= 4
        assert domains[0] in sched.domains_on(1)
        assert domains[0] not in sched.domains_on(0)

    def test_migration_bumps_the_old_cpus_epoch(self):
        from repro.core.rights import AccessType, Rights
        from repro.sim.machine import SMPMachine

        kernel, domains, sched = self.make_affine()
        segment = kernel.create_segment("data", 2)
        kernel.attach(domains[0], segment, Rights.RW)
        smp = SMPMachine(kernel)
        smp.touch_on(0, domains[0], kernel.params.vaddr(segment.base_vpn))
        kernel.set_current_cpu(0)
        epoch0 = kernel.mutation_epoch
        sched.migrate(domains[0], 1)
        kernel.set_current_cpu(0)
        assert kernel.mutation_epoch > epoch0

    def test_needs_at_least_one_domain(self):
        from repro.os.scheduler import AffinityScheduler

        kernel = Kernel("plb", n_cpus=2)
        with pytest.raises(ValueError):
            AffinityScheduler(kernel, [])


class TestRunAffine:
    def test_affine_run_is_deterministic(self):
        from repro.core.rights import AccessType, Rights
        from repro.os.scheduler import AffinityScheduler
        from repro.sim.machine import SMPMachine
        from repro.sim.trace import Ref

        runs = []
        for _ in range(2):
            kernel = Kernel("plb", n_frames=64, n_cpus=2)
            domains = [kernel.create_domain(f"d{i}") for i in range(4)]
            segment = kernel.create_segment("data", 4)
            for domain in domains:
                kernel.attach(domain, segment, Rights.RW)
            sched = AffinityScheduler(kernel, domains)
            smp = SMPMachine(kernel, quantum=4)
            tasks = [
                (
                    domain,
                    [
                        Ref(domain.pd_id,
                            kernel.params.vaddr(segment.base_vpn + (i % 4)),
                            AccessType.WRITE if i % 3 == 0 else AccessType.READ)
                        for i in range(16)
                    ],
                )
                for domain in domains
            ]
            delta = smp.run_affine(tasks, scheduler=sched)
            runs.append(delta.as_dict())
        assert runs[0] == runs[1]
        assert any(name.startswith("pdid") or "switch" in name
                   for name in runs[0])

    def test_duplicate_task_rejected(self):
        from repro.core.rights import AccessType, Rights
        from repro.os.scheduler import AffinityScheduler
        from repro.sim.machine import SMPMachine

        kernel = Kernel("plb", n_cpus=2)
        domain = kernel.create_domain("app")
        sched = AffinityScheduler(kernel, [domain])
        smp = SMPMachine(kernel)
        with pytest.raises(ValueError, match="duplicate task"):
            smp.run_affine([(domain, []), (domain, [])], scheduler=sched)
