"""Unit tests for the kernel's global translation and group tables."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.os.pagetable import GlobalTranslationTable, GroupTable


class TestGlobalTranslationTable:
    def test_map_and_lookup(self):
        table = GlobalTranslationTable()
        table.map(5, 42)
        assert table.pfn_for(5) == 42
        assert table.is_resident(5)

    def test_single_translation_per_page(self):
        """The SASOS invariant: remapping replaces, never aliases."""
        table = GlobalTranslationTable()
        table.map(5, 42)
        table.map(5, 43)
        assert table.pfn_for(5) == 43
        assert len(table) == 1

    def test_unmap_returns_frame(self):
        table = GlobalTranslationTable()
        table.map(5, 42)
        assert table.unmap(5) == 42
        assert not table.is_resident(5)
        assert table.is_known(5)  # state survives unmap

    def test_unmap_missing_returns_none(self):
        table = GlobalTranslationTable()
        assert table.unmap(5) is None

    def test_on_disk_flag(self):
        table = GlobalTranslationTable()
        table.map(5, 42)
        table.unmap(5)
        table.mark_on_disk(5)
        mapping = table.mapping(5)
        assert mapping is not None and mapping.on_disk
        table.mark_on_disk(5, False)
        assert not table.mapping(5).on_disk

    def test_forget(self):
        table = GlobalTranslationTable()
        table.map(5, 42)
        table.forget(5)
        assert not table.is_known(5)

    def test_resident_vpns(self):
        table = GlobalTranslationTable()
        table.map(1, 10)
        table.map(2, 11)
        table.unmap(2)
        assert table.resident_vpns() == [1]


class TestGroupTable:
    def test_assign_and_query(self):
        table = GroupTable()
        table.assign(5, aid=7, rights=Rights.RW)
        assert table.aid_of(5) == 7
        assert table.rights_of(5) == Rights.RW

    def test_each_page_in_exactly_one_group(self):
        """Moving a page changes its single group membership."""
        table = GroupTable()
        table.assign(5, aid=7, rights=Rights.RW)
        old = table.move(5, aid=9)
        assert old == 7
        assert table.aid_of(5) == 9
        assert table.pages_in_group(7) == []
        assert table.pages_in_group(9) == [5]

    def test_move_unassigned_raises(self):
        with pytest.raises(KeyError):
            GroupTable().move(5, aid=9)

    def test_set_rights_requires_assignment(self):
        table = GroupTable()
        with pytest.raises(KeyError):
            table.set_rights(5, Rights.READ)
        table.assign(5, aid=1, rights=Rights.RW)
        table.set_rights(5, Rights.READ)
        assert table.rights_of(5) == Rights.READ

    def test_forget(self):
        table = GroupTable()
        table.assign(5, aid=1, rights=Rights.RW)
        table.forget(5)
        assert table.aid_of(5) is None
        assert table.rights_of(5) is None

    def test_pages_in_group(self):
        table = GroupTable()
        for vpn in (1, 2, 3):
            table.assign(vpn, aid=4, rights=Rights.READ)
        table.assign(9, aid=5, rights=Rights.READ)
        assert sorted(table.pages_in_group(4)) == [1, 2, 3]
