"""Tests for copy-on-write segments (the paper's footnote 4)."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.os.cow import CopyOnWriteManager
from repro.os.kernel import Kernel
from repro.sim.machine import Machine

MODELS = ("plb", "pagegroup", "conventional")


def setup(model: str, pages: int = 4, fill: bytes = b"original"):
    # A 2-way cache lets both virtual names of a shared frame be
    # resident at once (they index the same set for page-aligned
    # segments), which is what makes the synonym observable.
    kernel = Kernel(
        model,
        system_options={"detect_hazards": True, "cache_ways": 2}
        if model == "plb"
        else {},
    )
    machine = Machine(kernel)
    cow = CopyOnWriteManager(kernel)
    writer = kernel.create_domain("writer")
    source = kernel.create_segment("source", pages)
    cow.attach(writer, source, Rights.RW)
    for vpn in source.vpns():
        pfn = kernel.translations.pfn_for(vpn)
        kernel.memory.write_page(pfn, fill + bytes(64))
    return kernel, machine, cow, writer, source


class TestSharing:
    @pytest.mark.parametrize("model", MODELS)
    def test_copy_shares_frames(self, model):
        kernel, machine, cow, writer, source = setup(model)
        copy = cow.create_copy(source, "copy")
        for index, src_vpn in enumerate(source.vpns()):
            copy_vpn = copy.vpn_at(index)
            assert kernel.translations.pfn_for(copy_vpn) == \
                kernel.translations.pfn_for(src_vpn)
            assert cow.is_shared(src_vpn) and cow.is_shared(copy_vpn)
        assert kernel.stats["cow.pages_shared"] == source.n_pages

    @pytest.mark.parametrize("model", MODELS)
    def test_reads_work_on_both_sides_without_copying(self, model):
        kernel, machine, cow, writer, source = setup(model)
        copy = cow.create_copy(source, "copy")
        reader = kernel.create_domain("reader")
        cow.attach(reader, copy, Rights.RW)
        machine.read(writer, kernel.params.vaddr(source.base_vpn))
        machine.read(reader, kernel.params.vaddr(copy.base_vpn))
        assert kernel.stats["cow.pages_copied"] == 0

    def test_copy_uses_fresh_addresses(self):
        kernel, machine, cow, writer, source = setup("plb")
        copy = cow.create_copy(source, "copy")
        assert copy.base_vpn != source.base_vpn
        overlap = set(source.vpns()) & set(copy.vpns())
        assert not overlap


class TestBreakOnWrite:
    @pytest.mark.parametrize("model", MODELS)
    def test_write_breaks_share_and_preserves_data(self, model):
        kernel, machine, cow, writer, source = setup(model)
        copy = cow.create_copy(source, "copy")
        reader = kernel.create_domain("reader")
        cow.attach(reader, copy, Rights.RW)
        src_vpn = source.base_vpn
        copy_vpn = copy.base_vpn
        # Writer writes the source side: it faults, copies, proceeds.
        result = machine.write(writer, kernel.params.vaddr(src_vpn))
        assert result.protection_faults >= 1
        assert kernel.stats["cow.breaks"] >= 1
        # The two sides now have distinct frames.
        assert kernel.translations.pfn_for(src_vpn) != \
            kernel.translations.pfn_for(copy_vpn)
        # The copy still sees the original bytes.
        copy_data = kernel.memory.read_page(kernel.translations.pfn_for(copy_vpn))
        assert copy_data.startswith(b"original")

    @pytest.mark.parametrize("model", MODELS)
    def test_both_sides_writable_after_break(self, model):
        kernel, machine, cow, writer, source = setup(model)
        copy = cow.create_copy(source, "copy")
        reader = kernel.create_domain("reader")
        cow.attach(reader, copy, Rights.RW)
        machine.write(writer, kernel.params.vaddr(source.base_vpn))
        machine.write(reader, kernel.params.vaddr(copy.base_vpn))
        # A second write is fault-free (rights fully restored).
        assert machine.write(
            writer, kernel.params.vaddr(source.base_vpn)
        ).protection_faults == 0

    def test_share_fully_dissolves(self):
        kernel, machine, cow, writer, source = setup("plb")
        copy = cow.create_copy(source, "copy")
        machine.write(writer, kernel.params.vaddr(source.base_vpn))
        assert not cow.is_shared(source.base_vpn)
        assert not cow.is_shared(copy.base_vpn)

    def test_copy_of_copy_chains(self):
        kernel, machine, cow, writer, source = setup("plb")
        copy1 = cow.create_copy(source, "copy1")
        copy2 = cow.create_copy(source, "copy2")
        vpn = source.base_vpn
        assert len(cow.sharers_of(vpn)) == 3
        machine.write(writer, kernel.params.vaddr(vpn))
        # The two copies still share with each other.
        assert cow.is_shared(copy1.base_vpn)
        assert cow.is_shared(copy2.base_vpn)
        assert len(cow.sharers_of(copy1.base_vpn)) == 2


class TestFootnote4:
    def test_readonly_synonyms_are_harmless(self):
        """The shared frame appears under two virtual tags in the VIVT
        cache — a synonym — but read-only, so no coherence bug can
        occur (footnote 4)."""
        kernel, machine, cow, writer, source = setup("plb")
        copy = cow.create_copy(source, "copy")
        reader = kernel.create_domain("reader")
        cow.attach(reader, copy, Rights.READ)
        machine.read(writer, kernel.params.vaddr(source.base_vpn))
        machine.read(reader, kernel.params.vaddr(copy.base_vpn))
        # Both copies resident: the synonym exists...
        assert kernel.stats["dcache.synonym_hazard"] >= 1
        # ...but no line of the shared frame is dirty: writes always
        # fault before reaching the cache.
        pfn = kernel.translations.pfn_for(copy.base_vpn)
        assert kernel.stats["dcache.writeback"] == 0

    def test_synonym_gone_after_write(self):
        """"As soon as a write occurs to one copy of an address, the
        page is copied, and the synonym no longer exists."""
        kernel, machine, cow, writer, source = setup("plb")
        copy = cow.create_copy(source, "copy")
        machine.write(writer, kernel.params.vaddr(source.base_vpn))
        assert kernel.translations.pfn_for(source.base_vpn) != \
            kernel.translations.pfn_for(copy.base_vpn)
        assert not cow.is_shared(source.base_vpn)


class TestDestroySegment:
    @pytest.mark.parametrize("model", MODELS)
    def test_destroy_revokes_and_frees(self, model):
        kernel = Kernel(model)
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 4)
        kernel.attach(domain, segment, Rights.RW)
        machine.write(domain, kernel.params.vaddr(segment.base_vpn))
        free_before = kernel.memory.free_frames
        kernel.destroy_segment(segment)
        assert kernel.memory.free_frames == free_before + 4
        from repro.os.kernel import SegmentationViolation

        with pytest.raises(SegmentationViolation):
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))

    def test_destroy_twice_rejected(self):
        from repro.os.kernel import KernelError

        kernel = Kernel("plb")
        segment = kernel.create_segment("s", 2)
        kernel.destroy_segment(segment)
        with pytest.raises(KernelError):
            kernel.destroy_segment(segment)

    def test_addresses_not_recycled(self):
        kernel = Kernel("plb")
        segment = kernel.create_segment("s", 4)
        kernel.destroy_segment(segment)
        replacement = kernel.create_segment("s2", 4)
        assert replacement.base_vpn != segment.base_vpn

    def test_dead_addresses_cannot_be_repopulated(self):
        """Resurrection guard: a destroyed segment's pages stay dead."""
        from repro.os.kernel import KernelError

        kernel = Kernel("plb")
        segment = kernel.create_segment("s", 2)
        kernel.destroy_segment(segment)
        with pytest.raises(KernelError):
            kernel.populate_page(segment.base_vpn)
