"""ShardedAuthority: VPN-range home shards behind the same Authority API.

Unit coverage for the shard map itself (chunk interleave, spanning
segments, per-shard epochs, K=1 charging nothing) plus the satellite's
differential sweep: the ``repro.check`` lockstep harness replays 20
scenario-seeds through all three models at K ∈ {1, 2, 4} shards — a
sharded kernel must stay op-for-op identical to the gold model, because
sharding partitions *indexing and accounting*, never protection state.
"""

from __future__ import annotations

import pytest

from repro.check.differ import run_check
from repro.core.rights import Rights
from repro.os.authority import SHARD_SPAN_BITS, ShardedAuthority
from repro.os.kernel import MODELS, Kernel
from repro.sim.stats import Stats


def make_authority(n_shards: int) -> ShardedAuthority:
    return ShardedAuthority(
        n_frames=256, stats=Stats(), n_shards=n_shards
    )


# ---------------------------------------------------------------------- #
# Shard map


def test_rejects_non_positive_shard_count():
    with pytest.raises(ValueError):
        make_authority(0)


def test_chunk_interleave_spreads_adjacent_chunks():
    authority = make_authority(4)
    span = 1 << SHARD_SPAN_BITS
    # Consecutive chunks land on consecutive shards, wrapping at K.
    homes = [authority.shard_of(chunk * span) for chunk in range(8)]
    assert homes == [0, 1, 2, 3, 0, 1, 2, 3]
    # Pages inside one chunk share a home: range verbs on a small
    # segment stay single-shard.
    assert {authority.shard_of(vpn) for vpn in range(span)} == {0}


def test_shards_for_collects_home_set():
    authority = make_authority(4)
    span = 1 << SHARD_SPAN_BITS
    assert authority.shards_for(range(span)) == {0}
    assert authority.shards_for(range(span * 4)) == {0, 1, 2, 3}


def test_monolithic_authority_maps_everything_to_shard_zero():
    authority = make_authority(1)
    assert authority.shard_of(12345) == 0
    assert authority.shards_for((0, 999, 4095)) == {0}


# ---------------------------------------------------------------------- #
# Segment index


@pytest.mark.parametrize("model", MODELS)
def test_segment_at_agrees_with_monolithic(model):
    """The per-shard segment index answers exactly like the global one."""
    mono = Kernel(model, n_frames=256, n_shards=1)
    shard = Kernel(model, n_frames=256, n_shards=4)
    for kernel in (mono, shard):
        dom = kernel.create_domain("d")
        for i in range(4):
            seg = kernel.create_segment(f"s{i}", 8)
            kernel.attach(dom, seg, Rights.RW)
    probe_vpns = range(0, 64)
    for vpn in probe_vpns:
        a = mono.authority.segment_at(vpn)
        b = shard.authority.segment_at(vpn)
        assert (a is None) == (b is None), vpn
        if a is not None:
            assert (a.base_vpn, a.n_pages) == (b.base_vpn, b.n_pages)


def test_spanning_segment_registered_in_every_overlapped_shard():
    kernel = Kernel("plb", n_frames=256, n_shards=4)
    dom = kernel.create_domain("d")
    # 64 pages = 8 chunks: overlaps every shard's range twice.
    seg = kernel.create_segment("big", 64)
    kernel.attach(dom, seg, Rights.RW)
    authority = kernel.authority
    for vpn in (seg.base_vpn, seg.base_vpn + 20, seg.end_vpn - 1):
        found = authority.segment_at(vpn)
        assert found is not None and found.base_vpn == seg.base_vpn
    kernel.destroy_segment(seg)
    assert authority.segment_at(seg.base_vpn) is None


# ---------------------------------------------------------------------- #
# Epochs and accounting


def test_single_shard_run_charges_no_shard_counters():
    kernel = Kernel("plb", n_frames=128, n_shards=1)
    dom = kernel.create_domain("d")
    seg = kernel.create_segment("s", 8)
    kernel.attach(dom, seg, Rights.RW)
    kernel.set_page_rights(dom, seg.base_vpn, Rights.READ)
    counters = kernel.stats.as_dict()
    assert not any(k.startswith("authority.shard.") for k in counters)


def test_disjoint_mutations_advance_disjoint_epochs():
    kernel = Kernel("plb", n_frames=256, n_shards=4)
    dom = kernel.create_domain("d")
    segs = [kernel.create_segment(f"s{i}", 8) for i in range(4)]
    for seg in segs:
        kernel.attach(dom, seg, Rights.RW)
    authority = kernel.authority
    homes = [authority.shard_of(seg.base_vpn) for seg in segs]
    assert sorted(homes) == [0, 1, 2, 3]
    before = [authority.shard_epoch(i) for i in range(4)]
    kernel.set_page_rights(dom, segs[0].base_vpn, Rights.READ)
    after = [authority.shard_epoch(i) for i in range(4)]
    # Only the touched segment's home shard moved: disjoint-segment
    # verbs stop contending on one global epoch.
    assert after[homes[0]] == before[homes[0]] + 1
    for i in range(4):
        if i != homes[0]:
            assert after[i] == before[i]


def test_single_shard_mutation_charged_as_local():
    kernel = Kernel("plb", n_frames=256, n_shards=4)
    dom = kernel.create_domain("d")
    seg = kernel.create_segment("s", 8)
    kernel.attach(dom, seg, Rights.RW)
    stats = kernel.stats.as_dict()
    local, cross = (
        stats.get("authority.shard.local", 0),
        stats.get("authority.shard.cross", 0),
    )
    kernel.set_page_rights(dom, seg.base_vpn, Rights.READ)
    stats = kernel.stats.as_dict()
    assert stats.get("authority.shard.local", 0) == local + 1
    assert stats.get("authority.shard.cross", 0) == cross


def test_spanning_mutation_charged_as_cross():
    kernel = Kernel("plb", n_frames=256, n_shards=4)
    dom = kernel.create_domain("d")
    seg = kernel.create_segment("big", 32)
    kernel.attach(dom, seg, Rights.RW)
    stats = kernel.stats.as_dict()
    cross = stats.get("authority.shard.cross", 0)
    kernel.set_segment_rights(dom, seg, Rights.READ)
    stats = kernel.stats.as_dict()
    assert stats.get("authority.shard.cross", 0) == cross + 1


# ---------------------------------------------------------------------- #
# Differential sweep: sharded vs monolithic vs gold

#: 20 scenario-seeds spread over every generator the oracle has.
SCENARIO_SEEDS = tuple(
    (scenario, seed)
    for scenario in ("fuzz", "attach", "rights", "paging", "switch")
    for seed in range(4)
)


@pytest.mark.parametrize("n_shards", (1, 2, 4))
@pytest.mark.parametrize("scenario,seed", SCENARIO_SEEDS)
def test_sharded_kernel_matches_gold(scenario, seed, n_shards):
    result = run_check(
        scenario, seed, n_ops=100, minimize=False, n_shards=n_shards
    )
    assert result.ok, (
        f"{scenario} seed={seed} K={n_shards}: "
        f"{result.divergence and result.divergence.describe()}"
    )
