"""Tests for the user-level paging server (Section 4.1.3 / Table 1)."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.os.kernel import Kernel
from repro.os.pager import PagerError, UserLevelPager
from repro.sim.machine import Machine


def paged_setup(model: str, *, compress=False, pages=4):
    kernel = Kernel(model)
    pager = UserLevelPager(kernel, compress=compress)
    domain = kernel.create_domain("app")
    segment = kernel.create_segment("data", pages)
    kernel.attach(domain, segment, Rights.RW)
    return kernel, pager, domain, segment


class TestPageOutIn:
    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_roundtrip_preserves_data(self, model):
        kernel, pager, domain, segment = paged_setup(model)
        vpn = segment.base_vpn
        pfn = kernel.translations.pfn_for(vpn)
        kernel.memory.write_page(pfn, b"important" + bytes(100))
        pager.page_out(vpn)
        assert not kernel.translations.is_resident(vpn)
        assert vpn in pager.evicted_pages
        pager.page_in(vpn)
        new_pfn = kernel.translations.pfn_for(vpn)
        assert kernel.memory.read_page(new_pfn).startswith(b"important")

    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_access_after_pageout_demand_pages_in(self, model):
        kernel, pager, domain, segment = paged_setup(model)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.write(domain, vaddr)
        pager.page_out(segment.base_vpn)
        result = machine.read(domain, vaddr)
        assert result.faulted
        assert kernel.translations.is_resident(segment.base_vpn)
        assert segment.base_vpn not in pager.evicted_pages

    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_rights_restored_after_page_in(self, model):
        kernel, pager, domain, segment = paged_setup(model)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.write(domain, vaddr)
        pager.page_out(segment.base_vpn)
        machine.write(domain, vaddr)  # faults, pages in, retries
        machine.write(domain, vaddr)  # and stays writable

    def test_page_out_frees_frame(self):
        kernel, pager, domain, segment = paged_setup("plb")
        free_before = kernel.memory.free_frames
        pager.page_out(segment.base_vpn)
        assert kernel.memory.free_frames == free_before + 1

    def test_double_page_out_rejected(self):
        kernel, pager, _, segment = paged_setup("plb")
        pager.page_out(segment.base_vpn)
        with pytest.raises(ValueError):
            pager.page_out(segment.base_vpn)

    def test_page_in_of_resident_page_rejected(self):
        kernel, pager, _, segment = paged_setup("plb")
        with pytest.raises(ValueError):
            pager.page_in(segment.base_vpn)

    def test_page_out_nonresident_rejected(self):
        kernel, pager, _, segment = paged_setup("plb")
        pager.page_out(segment.base_vpn)
        with pytest.raises(ValueError):
            pager.page_out(segment.base_vpn)


class TestCompression:
    def test_compressed_roundtrip(self):
        kernel, pager, domain, segment = paged_setup("plb", compress=True)
        vpn = segment.base_vpn
        pfn = kernel.translations.pfn_for(vpn)
        data = b"abc" * 1000 + bytes(1000)
        kernel.memory.write_page(pfn, data)
        pager.page_out(vpn)
        assert kernel.stats["compress.page_out"] == 1
        pager.page_in(vpn)
        assert kernel.memory.read_page(kernel.translations.pfn_for(vpn)) == data
        assert kernel.stats["compress.page_in"] == 1

    def test_compression_saves_disk_bytes(self):
        kernel, pager, _, segment = paged_setup("plb", compress=True)
        pager.page_out(segment.base_vpn)
        assert kernel.stats["disk.bytes_written"] < kernel.params.page_size


class TestModelSpecificProtocol:
    def test_pagegroup_moves_page_to_server_group(self):
        kernel, pager, domain, segment = paged_setup("pagegroup")
        vpn = segment.base_vpn
        pager.page_out(vpn)
        assert kernel.group_table.aid_of(vpn) == pager.server_group
        pager.page_in(vpn)
        assert kernel.group_table.aid_of(vpn) == segment.aid

    def test_plb_revokes_all_domains_during_operation(self):
        kernel, pager, domain, segment = paged_setup("plb")
        other = kernel.create_domain("other")
        kernel.attach(other, segment, Rights.READ)
        vpn = segment.base_vpn
        pager.page_out(vpn)
        assert domain.page_overrides[vpn] == Rights.NONE
        assert other.page_overrides[vpn] == Rights.NONE
        pager.page_in(vpn)
        # Overrides restored (none existed before the page-out).
        assert vpn not in domain.page_overrides
        assert vpn not in other.page_overrides

    def test_plb_preserves_preexisting_overrides(self):
        kernel, pager, domain, segment = paged_setup("plb")
        vpn = segment.base_vpn
        kernel.set_page_rights(domain, vpn, Rights.READ)
        pager.page_out(vpn)
        pager.page_in(vpn)
        assert domain.page_overrides[vpn] == Rights.READ

    def test_pager_counters(self):
        kernel, pager, _, segment = paged_setup("plb")
        pager.page_out(segment.base_vpn)
        pager.page_in(segment.base_vpn)
        assert kernel.stats["pager.page_out"] == 1
        assert kernel.stats["pager.page_in"] == 1


class TestReentrancyAndIdempotence:
    """The pager verbs are guarded: misuse is a typed error, never
    silent corruption (the chaos harness leans on these guarantees)."""

    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_double_page_out_is_a_typed_error(self, model):
        kernel, pager, domain, segment = paged_setup(model)
        vpn = segment.base_vpn
        pager.page_out(vpn)
        with pytest.raises(PagerError, match="already paged out"):
            pager.page_out(vpn)
        # The eviction record survives the failed second attempt.
        assert vpn in pager.evicted_pages
        pager.page_in(vpn)
        assert kernel.translations.is_resident(vpn)

    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_page_in_of_never_evicted_page_is_a_typed_error(self, model):
        kernel, pager, domain, segment = paged_setup(model)
        with pytest.raises(PagerError, match="not paged out by this server"):
            pager.page_in(segment.base_vpn)
        assert kernel.translations.is_resident(segment.base_vpn)

    def test_page_out_of_nonresident_page_is_a_typed_error(self):
        kernel, pager, domain, segment = paged_setup("plb")
        vpn = segment.base_vpn
        kernel.free_page(vpn)
        with pytest.raises(PagerError, match="not resident"):
            pager.page_out(vpn)

    def test_in_flight_page_is_busy_to_both_verbs(self):
        kernel, pager, domain, segment = paged_setup("plb")
        vpn = segment.base_vpn
        pager._busy.add(vpn)
        try:
            with pytest.raises(PagerError, match="in flight"):
                pager.page_out(vpn)
            with pytest.raises(PagerError, match="in flight"):
                pager.page_in(vpn)
        finally:
            pager._busy.discard(vpn)

    def test_fault_handler_does_not_recurse_into_busy_page(self):
        # A fault raised *by* an in-flight paging operation must not
        # re-enter page_in on the same page.
        kernel, pager, domain, segment = paged_setup("plb")
        vpn = segment.base_vpn
        pager.page_out(vpn)
        pager._busy.add(vpn)
        try:
            assert pager._fault_page_in(vpn) is False
        finally:
            pager._busy.discard(vpn)
        # Once the operation is no longer in flight, the fault handler
        # services the page normally.
        assert pager._fault_page_in(vpn) is True
        assert kernel.translations.is_resident(vpn)

    def test_fault_on_dead_segment_drops_stale_eviction(self):
        kernel, pager, domain, segment = paged_setup("plb")
        vpn = segment.base_vpn
        pager.page_out(vpn)
        kernel.detach(domain, segment)
        kernel.destroy_segment(segment)
        assert pager._fault_page_in(vpn) is False
        assert vpn not in pager.evicted_pages
        assert kernel.stats["pager.stale_eviction_dropped"] == 1

    def test_failed_attempt_leaves_eviction_state_intact(self):
        kernel, pager, domain, segment = paged_setup("plb")
        vpn = segment.base_vpn
        kernel.set_page_rights(domain, vpn, Rights.READ)
        pager.page_out(vpn)
        state_before = pager._evicted[vpn]
        with pytest.raises(PagerError):
            pager.page_out(vpn)  # double page-out
        assert pager._evicted[vpn] is state_before
        pager.page_in(vpn)
        assert domain.page_overrides[vpn] == Rights.READ
