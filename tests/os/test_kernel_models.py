"""Model-specific kernel mechanics: each model must manipulate its
hardware structures exactly as Table 1 prescribes."""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.os.kernel import Kernel, KernelError
from repro.sim.machine import Machine


def attached(kernel, n_pages=8, rights=Rights.RW, name="seg"):
    domain = kernel.create_domain("d-" + name)
    segment = kernel.create_segment(name, n_pages)
    kernel.attach(domain, segment, rights)
    return domain, segment


class TestPLBModelMechanics:
    """The domain-page column of Table 1."""

    def test_attach_touches_no_hardware(self, plb_kernel):
        kernel = plb_kernel
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 8)
        before = kernel.stats.snapshot()
        kernel.attach(domain, segment, Rights.RW)
        delta = kernel.stats.delta(before)
        # Only the syscall itself: no PLB or TLB manipulation.
        assert delta.total("plb") == 0
        assert delta.total("tlb") == 0

    def test_rights_fault_in_one_page_at_a_time(self, plb_kernel):
        kernel = plb_kernel
        domain, segment = attached(kernel)
        machine = Machine(kernel)
        for index, vpn in enumerate(segment.vpns()):
            machine.read(domain, kernel.params.vaddr(vpn))
            assert kernel.stats["plb.fill"] == index + 1

    def test_detach_sweeps_plb(self, plb_kernel):
        kernel = plb_kernel
        domain, segment = attached(kernel)
        machine = Machine(kernel)
        for vpn in segment.vpns():
            machine.read(domain, kernel.params.vaddr(vpn))
        before = kernel.stats.snapshot()
        kernel.detach(domain, segment)
        delta = kernel.stats.delta(before)
        assert delta["plb.sweep_inspected"] >= 8
        assert delta["plb.sweep_removed"] == 8

    def test_set_page_rights_updates_single_entry(self, plb_kernel):
        kernel = plb_kernel
        domain, segment = attached(kernel)
        machine = Machine(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        before = kernel.stats.snapshot()
        kernel.set_page_rights(domain, segment.base_vpn, Rights.NONE)
        delta = kernel.stats.delta(before)
        assert delta["plb.update"] == 1
        assert delta.total("plb.sweep_inspected") == 0

    def test_set_rights_all_updates_one_entry_per_sharer(self, plb_kernel):
        """§4.1.3: entries changed = number of sharing domains."""
        kernel = plb_kernel
        domain, segment = attached(kernel)
        others = [kernel.create_domain(f"o{i}") for i in range(3)]
        machine = Machine(kernel)
        for sharer in others:
            kernel.attach(sharer, segment, Rights.RW)
        for d in [domain] + others:
            machine.read(d, kernel.params.vaddr(segment.base_vpn))
        before = kernel.stats.snapshot()
        kernel.set_rights_all_domains(segment.base_vpn, Rights.NONE)
        delta = kernel.stats.delta(before)
        assert delta["plb.sweep_updated"] == 4

    def test_unmap_requires_no_plb_maintenance(self, plb_kernel):
        """§4.1.3: 'no maintenance of the PLB is required'."""
        kernel = plb_kernel
        domain, segment = attached(kernel)
        machine = Machine(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        plb_resident = len(kernel.system.plb)
        kernel.unmap_page(segment.base_vpn)
        assert len(kernel.system.plb) == plb_resident  # entries drain lazily
        assert segment.base_vpn not in kernel.system.tlb

    def test_plb_replication_for_shared_pages(self, plb_kernel):
        kernel = plb_kernel
        domain, segment = attached(kernel)
        other = kernel.create_domain("other")
        kernel.attach(other, segment, Rights.READ)
        machine = Machine(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        machine.read(other, kernel.params.vaddr(segment.base_vpn))
        assert kernel.system.plb.entries_for_page(segment.base_vpn) == 2
        assert len(kernel.system.tlb) == 1  # translation not replicated


class TestPageGroupModelMechanics:
    """The page-group column of Table 1."""

    def test_attach_grants_group(self, pagegroup_kernel):
        kernel = pagegroup_kernel
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 4)
        kernel.attach(domain, segment, Rights.RW)
        assert domain.holds_group(segment.aid)

    def test_read_only_attach_sets_write_disable(self, pagegroup_kernel):
        kernel = pagegroup_kernel
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 4)
        kernel.attach(domain, segment, Rights.READ)
        entry = domain.groups[segment.aid]
        assert entry.write_disable

    def test_detach_drops_group_constant_work(self, pagegroup_kernel):
        """Detach cost is independent of pages touched (Table 1)."""
        kernel = pagegroup_kernel
        domain, segment = attached(kernel, n_pages=16)
        machine = Machine(kernel)
        for vpn in segment.vpns():
            machine.read(domain, kernel.params.vaddr(vpn))
        before = kernel.stats.snapshot()
        kernel.detach(domain, segment)
        delta = kernel.stats.delta(before)
        assert not domain.holds_group(segment.aid)
        # No per-entry sweeps anywhere.
        assert delta.total("plb") == 0
        assert delta["pgtlb.update"] == 0

    def test_set_rights_all_is_single_tlb_update(self, pagegroup_kernel):
        kernel = pagegroup_kernel
        domain, segment = attached(kernel)
        machine = Machine(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        before = kernel.stats.snapshot()
        kernel.set_rights_all_domains(segment.base_vpn, Rights.READ)
        delta = kernel.stats.delta(before)
        assert delta["pgtlb.update"] == 1

    def test_per_domain_page_rights_move_page_to_private_group(
        self, pagegroup_kernel
    ):
        """§4.1.2: per-domain changes need additional page-groups."""
        kernel = pagegroup_kernel
        domain, segment = attached(kernel)
        original_aid = kernel.group_table.aid_of(segment.base_vpn)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.RW)
        new_aid = kernel.group_table.aid_of(segment.base_vpn)
        assert new_aid != original_aid
        assert domain.holds_group(new_aid)

    def test_private_group_excludes_other_domains(self, pagegroup_kernel):
        """The global nature of page-group protection: moving a page to
        a writer's group removes other domains' access (§4.1.2)."""
        kernel = pagegroup_kernel
        domain, segment = attached(kernel)
        other = kernel.create_domain("other")
        kernel.attach(other, segment, Rights.READ)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.read(other, vaddr)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.RW)
        from repro.os.kernel import SegmentationViolation

        with pytest.raises(SegmentationViolation):
            machine.read(other, vaddr)

    def test_move_page_to_group_updates_tlb_in_place(self, pagegroup_kernel):
        kernel = pagegroup_kernel
        domain, segment = attached(kernel)
        machine = Machine(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        target = kernel.create_page_group()
        kernel.grant_group(domain, target)
        before = kernel.stats.snapshot()
        old = kernel.move_page_to_group(segment.base_vpn, target, rights=Rights.RW)
        delta = kernel.stats.delta(before)
        assert old == segment.aid
        assert delta["pgtlb.update"] == 1
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))

    def test_grant_installs_for_current_domain_only(self, pagegroup_kernel):
        kernel = pagegroup_kernel
        a = kernel.create_domain("a")
        b = kernel.create_domain("b")
        kernel.switch_to(a)
        group = kernel.create_page_group()
        kernel.grant_group(b, group)  # b is not current
        assert group not in kernel.system.groups  # type: ignore[operator]
        kernel.grant_group(a, group)
        assert group in kernel.system.groups  # type: ignore[operator]

    def test_revoke_group(self, pagegroup_kernel):
        kernel = pagegroup_kernel
        domain = kernel.create_domain("d")
        kernel.switch_to(domain)
        group = kernel.create_page_group()
        kernel.grant_group(domain, group)
        kernel.revoke_group(domain, group)
        assert not domain.holds_group(group)
        assert group not in kernel.system.groups  # type: ignore[operator]

    def test_group_cache_purged_on_switch(self, pagegroup_kernel):
        kernel = pagegroup_kernel
        domain, segment = attached(kernel)
        other = kernel.create_domain("other")
        machine = Machine(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        assert len(kernel.system.groups) > 0  # type: ignore[arg-type]
        kernel.switch_to(other)
        assert len(kernel.system.groups) == 0  # type: ignore[arg-type]


class TestConventionalModelMechanics:
    """The Section 3.1 baseline's mechanics."""

    def test_attach_replicates_ptes(self, conventional_kernel):
        kernel = conventional_kernel
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 8)
        before = kernel.stats.snapshot()
        kernel.attach(domain, segment, Rights.RW)
        delta = kernel.stats.delta(before)
        assert delta["kernel.pte_replicated"] == 8
        assert kernel.linear_tables[domain.pd_id].mapped_entries == 8

    def test_sharing_duplicates_tables(self, conventional_kernel):
        kernel = conventional_kernel
        segment = kernel.create_segment("s", 8)
        domains = [kernel.create_domain(f"d{i}") for i in range(3)]
        for domain in domains:
            kernel.attach(domain, segment, Rights.RW)
        from repro.core.conventional import duplication_report

        report = duplication_report(
            {d.pd_id: kernel.linear_tables[d.pd_id] for d in domains}
        )
        assert report["duplicated_entries"] == 16

    def test_set_rights_all_touches_every_replica(self, conventional_kernel):
        kernel = conventional_kernel
        segment = kernel.create_segment("s", 4)
        domains = [kernel.create_domain(f"d{i}") for i in range(3)]
        machine = Machine(kernel)
        for domain in domains:
            kernel.attach(domain, segment, Rights.RW)
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        before = kernel.stats.snapshot()
        kernel.set_rights_all_domains(segment.base_vpn, Rights.NONE)
        delta = kernel.stats.delta(before)
        assert delta["asidtlb.update"] == 3

    def test_unmap_sweeps_all_replicas(self, conventional_kernel):
        kernel = conventional_kernel
        segment = kernel.create_segment("s", 4)
        domains = [kernel.create_domain(f"d{i}") for i in range(3)]
        machine = Machine(kernel)
        for domain in domains:
            kernel.attach(domain, segment, Rights.RW)
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        assert kernel.system.tlb.replicas(segment.base_vpn) == 3
        kernel.unmap_page(segment.base_vpn)
        assert kernel.system.tlb.replicas(segment.base_vpn) == 0

    def test_detach_removes_mirror_and_tlb_range(self, conventional_kernel):
        kernel = conventional_kernel
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 4)
        kernel.attach(domain, segment, Rights.RW)
        machine = Machine(kernel)
        machine.read(domain, kernel.params.vaddr(segment.base_vpn))
        kernel.detach(domain, segment)
        assert kernel.linear_tables[domain.pd_id].mapped_entries == 0
        assert kernel.system.tlb.lookup(domain.pd_id, segment.base_vpn) is None

    def test_late_populate_updates_mirrors(self, conventional_kernel):
        kernel = conventional_kernel
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 4, populate=False)
        kernel.attach(domain, segment, Rights.RW)
        assert kernel.linear_tables[domain.pd_id].mapped_entries == 0
        kernel.populate_page(segment.base_vpn)
        assert kernel.linear_tables[domain.pd_id].mapped_entries == 1
