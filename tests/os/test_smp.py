"""SMP kernel: per-CPU contexts, the shootdown bus, and its fault contract."""

from __future__ import annotations

import pytest

from repro.core.mmu import PageFault
from repro.core.rights import AccessType, Rights
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.os.kernel import MODELS, Kernel, KernelError, SegmentationViolation
from repro.sim.machine import Machine, SMPMachine
from repro.sim.trace import Ref


def smp_kernel(model: str = "plb", n_cpus: int = 2) -> Kernel:
    return Kernel(model, n_frames=64, n_cpus=n_cpus)


def shared_setup(kernel: Kernel, *, rights: Rights = Rights.RW):
    domain = kernel.create_domain("app")
    segment = kernel.create_segment("data", 4)
    kernel.attach(domain, segment, rights)
    return domain, segment


class TestTopology:
    def test_n_cpus_must_be_positive(self):
        with pytest.raises(ValueError):
            Kernel("plb", n_cpus=0)

    def test_cpu0_shares_the_kernel_stats(self):
        kernel = smp_kernel()
        assert kernel.cpus[0].stats is kernel.stats
        assert kernel.cpus[1].stats is not kernel.stats

    def test_set_current_cpu_rebinds_the_system(self):
        kernel = smp_kernel()
        assert kernel.system is kernel.cpus[0].system
        kernel.set_current_cpu(1)
        assert kernel.system is kernel.cpus[1].system
        with pytest.raises(KernelError):
            kernel.set_current_cpu(5)

    def test_merged_stats_equals_kernel_stats_on_one_cpu(self):
        kernel = Kernel("plb", n_frames=64)
        domain, segment = shared_setup(kernel)
        Machine(kernel).write(domain, kernel.params.vaddr(segment.base_vpn))
        assert kernel.merged_stats().as_dict() == kernel.stats.as_dict()


class TestEpochs:
    def test_verbs_bump_only_the_issuing_cpus_epoch(self):
        kernel = smp_kernel()
        kernel.set_current_cpu(1)
        parked1 = kernel.mutation_epoch
        kernel.set_current_cpu(0)
        kernel.create_domain("app")  # traps on CPU 0, no shootdown
        kernel.set_current_cpu(1)
        assert kernel.mutation_epoch == parked1

    def test_shootdown_bumps_the_remote_cpus_epoch(self):
        kernel = smp_kernel()
        domain, segment = shared_setup(kernel)
        kernel.set_current_cpu(1)
        parked1 = kernel.mutation_epoch
        kernel.set_current_cpu(0)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.READ)
        kernel.set_current_cpu(1)
        assert kernel.mutation_epoch > parked1

    def test_epoch_survives_a_round_trip(self):
        kernel = smp_kernel()
        kernel.set_current_cpu(1)
        kernel.create_domain("bump-cpu1")
        epoch1 = kernel.mutation_epoch
        kernel.set_current_cpu(0)
        kernel.set_current_cpu(1)
        assert kernel.mutation_epoch == epoch1


class TestShootdownSemantics:
    @pytest.mark.parametrize("model", MODELS)
    def test_rights_revocation_reaches_remote_cpus(self, model):
        kernel = smp_kernel(model)
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for cpu in (0, 1):
            assert not smp.touch_on(cpu, domain, vaddr, AccessType.WRITE).faulted

        kernel.set_current_cpu(0)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.READ)
        assert not smp.touch_on(1, domain, vaddr).faulted
        with pytest.raises(SegmentationViolation):
            smp.touch_on(1, domain, vaddr, AccessType.WRITE)

    @pytest.mark.parametrize("model", MODELS)
    def test_attach_is_lazy_across_cpus(self, model):
        """Grants broadcast nothing — remote CPUs fault entries in on
        their next miss (Table 1's attach row, per CPU)."""
        kernel = smp_kernel(model)
        before = kernel.stats.snapshot()
        shared_setup(kernel)
        delta = kernel.stats.delta(before)
        assert delta["smp.shootdown.msgs"] == 0
        assert delta["smp.tlb_shootdown.msgs"] == 0

    def test_remote_costs_are_counted_per_verb(self):
        kernel = smp_kernel("plb", n_cpus=3)
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for cpu in range(3):
            smp.touch_on(cpu, domain, vaddr)
        kernel.set_current_cpu(0)
        before = kernel.stats.snapshot()
        kernel.set_page_rights(domain, segment.base_vpn, Rights.NONE)
        delta = kernel.stats.delta(before)
        assert delta["smp.shootdown.msgs"] == 2
        assert delta["smp.shootdown.verb.set_page_rights"] == 2


class TestSMPMachineDeterminism:
    def _shards(self, kernel, domain, segment, n: int):
        params = kernel.params
        vpns = list(segment.vpns())
        return [
            [
                Ref(domain.pd_id, params.vaddr(vpns[(i + k) % len(vpns)]),
                    AccessType.WRITE if (i + k) % 3 == 0 else AccessType.READ)
                for i in range(n)
            ]
            for k in range(2)
        ]

    def test_same_shards_same_quantum_same_stats(self):
        runs = []
        for _ in range(2):
            kernel = smp_kernel()
            domain, segment = shared_setup(kernel)
            smp = SMPMachine(kernel, quantum=8)
            delta = smp.run(self._shards(kernel, domain, segment, 64))
            runs.append(delta.as_dict())
        assert runs[0] == runs[1]

    def test_more_shards_than_cpus_rejected(self):
        kernel = smp_kernel()
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        with pytest.raises(ValueError):
            smp.run(self._shards(kernel, domain, segment, 8) + [[]])


class TestTranslationNeverIntercepted:
    """The structural contract pinned by the bus: an armed injector may
    drop *protection* shootdowns, never *translation* shootdowns."""

    def drop_everything(self) -> FaultInjector:
        return FaultInjector(
            FaultPlan(events=(FaultEvent("shootdown", "drop", at=0, arg=9999),))
        )

    def test_unmap_invalidates_remote_translations_despite_the_injector(self):
        kernel = smp_kernel("plb")
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for cpu in (0, 1):
            smp.touch_on(cpu, domain, vaddr)

        injector = self.drop_everything()
        injector.arm(kernel)
        kernel.set_current_cpu(0)
        kernel.unmap_page(segment.base_vpn)
        injector.disarm()

        # Both CPUs must refuse to translate the dead page; a stale hit
        # here would hand out a released frame.
        for cpu in (0, 1):
            kernel.set_current_cpu(cpu)
            with pytest.raises(PageFault):
                kernel.system.access(vaddr, AccessType.READ)

    def test_protection_drops_do_leave_remote_cpus_stale(self):
        """The contrast case: the same plan swallows a protection
        shootdown, so the remote CPU keeps granting until scrubbed."""
        from repro.faults.scrub import Scrubber

        kernel = smp_kernel("plb")
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for cpu in (0, 1):
            smp.touch_on(cpu, domain, vaddr, AccessType.WRITE)

        injector = self.drop_everything()
        injector.arm(kernel)
        kernel.set_current_cpu(0)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.NONE)
        # CPU 1 never saw the revocation: its PLB still grants write.
        assert not smp.touch_on(1, domain, vaddr, AccessType.WRITE).faulted
        injector.disarm()
        assert Scrubber(kernel).scrub() >= 1
        with pytest.raises(SegmentationViolation):
            smp.touch_on(1, domain, vaddr, AccessType.WRITE)
