"""SMP kernel: per-CPU contexts, the shootdown bus, and its fault contract."""

from __future__ import annotations

import pytest

from repro.core.mmu import PageFault
from repro.core.rights import AccessType, Rights
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.os.kernel import MODELS, Kernel, KernelError, SegmentationViolation
from repro.sim.machine import Machine, SMPMachine
from repro.sim.trace import Ref


def smp_kernel(model: str = "plb", n_cpus: int = 2) -> Kernel:
    return Kernel(model, n_frames=64, n_cpus=n_cpus)


def shared_setup(kernel: Kernel, *, rights: Rights = Rights.RW):
    domain = kernel.create_domain("app")
    segment = kernel.create_segment("data", 4)
    kernel.attach(domain, segment, rights)
    return domain, segment


class TestTopology:
    def test_n_cpus_must_be_positive(self):
        with pytest.raises(ValueError):
            Kernel("plb", n_cpus=0)

    def test_cpu0_shares_the_kernel_stats(self):
        kernel = smp_kernel()
        assert kernel.cpus[0].stats is kernel.stats
        assert kernel.cpus[1].stats is not kernel.stats

    def test_set_current_cpu_rebinds_the_system(self):
        kernel = smp_kernel()
        assert kernel.system is kernel.cpus[0].system
        kernel.set_current_cpu(1)
        assert kernel.system is kernel.cpus[1].system
        with pytest.raises(KernelError):
            kernel.set_current_cpu(5)

    def test_merged_stats_equals_kernel_stats_on_one_cpu(self):
        kernel = Kernel("plb", n_frames=64)
        domain, segment = shared_setup(kernel)
        Machine(kernel).write(domain, kernel.params.vaddr(segment.base_vpn))
        assert kernel.merged_stats().as_dict() == kernel.stats.as_dict()


class TestEpochs:
    def test_verbs_bump_only_the_issuing_cpus_epoch(self):
        kernel = smp_kernel()
        kernel.set_current_cpu(1)
        parked1 = kernel.mutation_epoch
        kernel.set_current_cpu(0)
        kernel.create_domain("app")  # traps on CPU 0, no shootdown
        kernel.set_current_cpu(1)
        assert kernel.mutation_epoch == parked1

    def test_shootdown_bumps_the_remote_cpus_epoch(self):
        kernel = smp_kernel()
        domain, segment = shared_setup(kernel)
        kernel.set_current_cpu(1)
        parked1 = kernel.mutation_epoch
        kernel.set_current_cpu(0)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.READ)
        kernel.set_current_cpu(1)
        assert kernel.mutation_epoch > parked1

    def test_epoch_survives_a_round_trip(self):
        kernel = smp_kernel()
        kernel.set_current_cpu(1)
        kernel.create_domain("bump-cpu1")
        epoch1 = kernel.mutation_epoch
        kernel.set_current_cpu(0)
        kernel.set_current_cpu(1)
        assert kernel.mutation_epoch == epoch1


class TestShootdownSemantics:
    @pytest.mark.parametrize("model", MODELS)
    def test_rights_revocation_reaches_remote_cpus(self, model):
        kernel = smp_kernel(model)
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for cpu in (0, 1):
            assert not smp.touch_on(cpu, domain, vaddr, AccessType.WRITE).faulted

        kernel.set_current_cpu(0)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.READ)
        assert not smp.touch_on(1, domain, vaddr).faulted
        with pytest.raises(SegmentationViolation):
            smp.touch_on(1, domain, vaddr, AccessType.WRITE)

    @pytest.mark.parametrize("model", MODELS)
    def test_attach_is_lazy_across_cpus(self, model):
        """Grants broadcast nothing — remote CPUs fault entries in on
        their next miss (Table 1's attach row, per CPU)."""
        kernel = smp_kernel(model)
        before = kernel.stats.snapshot()
        shared_setup(kernel)
        delta = kernel.stats.delta(before)
        assert delta["smp.shootdown.msgs"] == 0
        assert delta["smp.tlb_shootdown.msgs"] == 0

    def test_remote_costs_are_counted_per_verb(self):
        kernel = smp_kernel("plb", n_cpus=3)
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for cpu in range(3):
            smp.touch_on(cpu, domain, vaddr)
        kernel.set_current_cpu(0)
        before = kernel.stats.snapshot()
        kernel.set_page_rights(domain, segment.base_vpn, Rights.NONE)
        delta = kernel.stats.delta(before)
        assert delta["smp.shootdown.msgs"] == 2
        assert delta["smp.shootdown.verb.set_page_rights"] == 2


class TestSMPMachineDeterminism:
    def _shards(self, kernel, domain, segment, n: int):
        params = kernel.params
        vpns = list(segment.vpns())
        return [
            [
                Ref(domain.pd_id, params.vaddr(vpns[(i + k) % len(vpns)]),
                    AccessType.WRITE if (i + k) % 3 == 0 else AccessType.READ)
                for i in range(n)
            ]
            for k in range(2)
        ]

    def test_same_shards_same_quantum_same_stats(self):
        runs = []
        for _ in range(2):
            kernel = smp_kernel()
            domain, segment = shared_setup(kernel)
            smp = SMPMachine(kernel, quantum=8)
            delta = smp.run(self._shards(kernel, domain, segment, 64))
            runs.append(delta.as_dict())
        assert runs[0] == runs[1]

    def test_more_shards_than_cpus_rejected(self):
        kernel = smp_kernel()
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        with pytest.raises(ValueError):
            smp.run(self._shards(kernel, domain, segment, 8) + [[]])


class TestTranslationNeverIntercepted:
    """The structural contract pinned by the bus: an armed injector may
    drop *protection* shootdowns, never *translation* shootdowns."""

    def drop_everything(self) -> FaultInjector:
        return FaultInjector(
            FaultPlan(events=(FaultEvent("shootdown", "drop", at=0, arg=9999),))
        )

    def test_unmap_invalidates_remote_translations_despite_the_injector(self):
        kernel = smp_kernel("plb")
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for cpu in (0, 1):
            smp.touch_on(cpu, domain, vaddr)

        injector = self.drop_everything()
        injector.arm(kernel)
        kernel.set_current_cpu(0)
        kernel.unmap_page(segment.base_vpn)
        injector.disarm()

        # Both CPUs must refuse to translate the dead page; a stale hit
        # here would hand out a released frame.
        for cpu in (0, 1):
            kernel.set_current_cpu(cpu)
            with pytest.raises(PageFault):
                kernel.system.access(vaddr, AccessType.READ)

    def test_protection_drops_do_leave_remote_cpus_stale(self):
        """The contrast case: the same plan swallows a protection
        shootdown, so the remote CPU keeps granting until scrubbed."""
        from repro.faults.scrub import Scrubber

        kernel = smp_kernel("plb")
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        for cpu in (0, 1):
            smp.touch_on(cpu, domain, vaddr, AccessType.WRITE)

        injector = self.drop_everything()
        injector.arm(kernel)
        kernel.set_current_cpu(0)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.NONE)
        # CPU 1 never saw the revocation: its PLB still grants write.
        assert not smp.touch_on(1, domain, vaddr, AccessType.WRITE).faulted
        injector.disarm()
        assert Scrubber(kernel).scrub() >= 1
        with pytest.raises(SegmentationViolation):
            smp.touch_on(1, domain, vaddr, AccessType.WRITE)


class TestBatchedRangeShootdowns:
    """A K-page verb coalesces to ONE bus message per remote CPU."""

    def warm(self, kernel, domain, segment):
        smp = SMPMachine(kernel)
        for cpu in range(len(kernel.cpus)):
            for vpn in segment.vpns():
                smp.touch_on(cpu, domain, kernel.params.vaddr(vpn),
                             AccessType.WRITE)
        kernel.set_current_cpu(0)
        return smp

    @pytest.mark.parametrize("model", MODELS)
    def test_one_message_per_remote_cpu_not_per_page(self, model):
        kernel = Kernel(model, n_frames=64, n_cpus=4)
        domain, segment = shared_setup(kernel)
        self.warm(kernel, domain, segment)
        before = kernel.stats.snapshot()
        kernel.set_pages_rights_all_domains(list(segment.vpns()), Rights.READ)
        delta = kernel.stats.delta(before)
        # 4 pages, 4 CPUs, 1 sharing domain: 3 messages, not 12.
        assert delta["smp.shootdown.msgs"] == 3
        assert delta["smp.shootdown.batches"] == 3
        assert delta["smp.shootdown.batched_entries"] == 12

    def test_no_batch_degenerates_to_the_per_page_loop(self):
        kernel = Kernel("plb", n_frames=64, n_cpus=4)
        domain, segment = shared_setup(kernel)
        self.warm(kernel, domain, segment)
        kernel.bus.batch = False
        before = kernel.stats.snapshot()
        kernel.set_pages_rights_all_domains(list(segment.vpns()), Rights.READ)
        delta = kernel.stats.delta(before)
        assert delta["smp.shootdown.msgs"] == 12
        assert delta["smp.shootdown.batches"] == 0
        assert delta["smp.shootdown.batched_entries"] == 0

    @pytest.mark.parametrize("model", MODELS)
    def test_batched_revocation_is_enforced_on_remote_cpus(self, model):
        kernel = Kernel(model, n_frames=64, n_cpus=3)
        domain, segment = shared_setup(kernel)
        smp = self.warm(kernel, domain, segment)
        kernel.set_pages_rights_all_domains(list(segment.vpns()), Rights.READ)
        for cpu in range(3):
            for vpn in segment.vpns():
                vaddr = kernel.params.vaddr(vpn)
                assert not smp.touch_on(cpu, domain, vaddr).faulted
                with pytest.raises(SegmentationViolation):
                    smp.touch_on(cpu, domain, vaddr, AccessType.WRITE)

    def test_single_cpu_emits_no_smp_counters(self):
        kernel = Kernel("plb", n_frames=64, n_cpus=1)
        domain, segment = shared_setup(kernel)
        machine = Machine(kernel)
        for vpn in segment.vpns():
            machine.write(domain, kernel.params.vaddr(vpn))
        before = kernel.stats.snapshot()
        kernel.set_pages_rights_all_domains(list(segment.vpns()), Rights.READ)
        kernel.unmap_pages(list(segment.vpns())[:2])
        delta = kernel.stats.delta(before)
        assert not [name for name in delta.as_dict() if name.startswith("smp.")]

    def test_predicate_filters_batch_delivery_per_cpu(self):
        """A predicate-gated range shootdown reaches only matching CPUs."""
        kernel = Kernel("plb", n_frames=64, n_cpus=3)
        domain, segment = shared_setup(kernel)
        self.warm(kernel, domain, segment)
        fired: list[int] = []
        pages = tuple(segment.vpns())
        kernel.bus.shootdown_range(
            "probe", pages,
            lambda vpns: lambda system: fired.append(len(vpns)) or 0,
            predicate=lambda ctx: ctx.cpu_id == 1,
            include_local=False,
        )
        # Exactly one delivery (CPU 1), carrying the whole page set.
        assert fired == [len(pages)]
        assert kernel.stats["smp.shootdown.msgs"] == 1
        assert kernel.stats["smp.shootdown.batches"] == 1

    def test_unmap_pages_batches_on_the_translation_channel(self):
        kernel = Kernel("plb", n_frames=64, n_cpus=4)
        domain, segment = shared_setup(kernel)
        self.warm(kernel, domain, segment)
        before = kernel.stats.snapshot()
        kernel.unmap_pages(list(segment.vpns()))
        delta = kernel.stats.delta(before)
        assert delta["smp.tlb_shootdown.msgs"] == 3
        assert delta["smp.tlb_shootdown.batches"] == 3
        assert delta["smp.shootdown.batches"] == 0


class TestInjectorBatchContract:
    """The injector intercepts a range shootdown as ONE atomic unit."""

    def staged(self, n_cpus: int = 2):
        kernel = smp_kernel("plb", n_cpus=n_cpus)
        domain, segment = shared_setup(kernel)
        smp = SMPMachine(kernel)
        for cpu in range(n_cpus):
            for vpn in segment.vpns():
                smp.touch_on(cpu, domain, kernel.params.vaddr(vpn),
                             AccessType.WRITE)
        kernel.set_current_cpu(0)
        return kernel, domain, segment, smp

    def writable_pages(self, smp, kernel, domain, segment, cpu) -> int:
        count = 0
        for vpn in segment.vpns():
            try:
                smp.touch_on(cpu, domain, kernel.params.vaddr(vpn),
                             AccessType.WRITE)
                count += 1
            except SegmentationViolation:
                pass
        return count

    def test_delayed_batch_replays_atomically(self):
        """A held range shootdown fires once, applying every page."""
        kernel, domain, segment, smp = self.staged()
        # Message stream: index 0 = local delivery, 1 = CPU 1's batch.
        injector = FaultInjector(FaultPlan(
            events=(FaultEvent("shootdown", "delay", at=1, arg=4),)
        ))
        injector.arm(kernel)
        injector.tick(0)
        kernel.set_current_cpu(0)
        kernel.set_pages_rights_all_domains(list(segment.vpns()), Rights.READ)
        # The whole batch is in flight: CPU 1 still grants write on
        # EVERY page (no partially-applied batch), CPU 0 on none.
        assert self.writable_pages(smp, kernel, domain, segment, 1) == 4
        assert self.writable_pages(smp, kernel, domain, segment, 0) == 0
        injector.tick(10)  # past fire_at: the batch replays, once
        assert self.writable_pages(smp, kernel, domain, segment, 1) == 0
        injector.disarm()

    def test_dropped_batch_repaired_by_one_scrub_pass(self):
        from repro.faults.scrub import Scrubber

        kernel, domain, segment, smp = self.staged()
        injector = FaultInjector(FaultPlan(
            events=(FaultEvent("shootdown", "drop", at=1, arg=1),)
        ))
        injector.arm(kernel)
        kernel.set_current_cpu(0)
        kernel.set_pages_rights_all_domains(list(segment.vpns()), Rights.READ)
        assert self.writable_pages(smp, kernel, domain, segment, 1) == 4
        injector.disarm()
        # One scrubber pass audits every CPU against authority and
        # repairs the whole lost batch.
        assert Scrubber(kernel).scrub() >= 1
        assert self.writable_pages(smp, kernel, domain, segment, 1) == 0

    def test_delayed_batch_fires_on_disarm_flush(self):
        kernel, domain, segment, smp = self.staged()
        injector = FaultInjector(FaultPlan(
            events=(FaultEvent("shootdown", "delay", at=1, arg=50),)
        ))
        injector.arm(kernel)
        kernel.set_current_cpu(0)
        kernel.set_pages_rights_all_domains(list(segment.vpns()), Rights.READ)
        assert self.writable_pages(smp, kernel, domain, segment, 1) == 4
        injector.disarm()  # flush_delayed replays the held batch
        assert self.writable_pages(smp, kernel, domain, segment, 1) == 0
