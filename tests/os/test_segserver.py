"""Tests for user-level segment servers (§6's ongoing-work feature)."""

from __future__ import annotations

import pytest

from repro.core.mmu import PageFault, ProtectionFault
from repro.core.rights import Rights
from repro.os.kernel import Kernel, SegmentationViolation
from repro.os.segserver import AppendOnlyLogServer, SegmentServerRegistry
from repro.sim.machine import Machine

MODELS = ("plb", "pagegroup", "conventional")


class _GrantingServer:
    """Test server: grants RW on the first fault, counts calls."""

    def __init__(self, kernel, segment):
        self.kernel = kernel
        self.segment = segment
        self.protection_calls = 0
        self.page_calls = 0

    def on_protection_fault(self, fault: ProtectionFault) -> bool:
        self.protection_calls += 1
        domain = self.kernel.domains[fault.pd_id]
        vpn = self.kernel.params.vpn(fault.vaddr)
        self.kernel.set_page_rights(domain, vpn, Rights.RW)
        return True

    def on_page_fault(self, fault: PageFault) -> bool:
        self.page_calls += 1
        return False


class TestRegistry:
    def test_faults_routed_to_owning_server(self, plb_kernel):
        kernel = plb_kernel
        machine = Machine(kernel)
        registry = SegmentServerRegistry(kernel)
        served = kernel.create_segment("served", 4)
        other = kernel.create_segment("other", 4)
        server = _GrantingServer(kernel, served)
        registry.register(served, server)
        domain = kernel.create_domain("d")
        kernel.attach(domain, served, Rights.NONE)
        kernel.attach(domain, other, Rights.RW)
        # Fault on the served segment goes to the server.
        machine.write(domain, kernel.params.vaddr(served.base_vpn))
        assert server.protection_calls == 1
        # Accesses on other segments never touch it.
        machine.write(domain, kernel.params.vaddr(other.base_vpn))
        assert server.protection_calls == 1

    def test_unregistered_segment_falls_through(self, plb_kernel):
        kernel = plb_kernel
        machine = Machine(kernel)
        SegmentServerRegistry(kernel)
        segment = kernel.create_segment("s", 2)
        domain = kernel.create_domain("d")
        kernel.attach(domain, segment, Rights.NONE)
        with pytest.raises(SegmentationViolation):
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))

    def test_double_register_rejected(self, plb_kernel):
        kernel = plb_kernel
        registry = SegmentServerRegistry(kernel)
        segment = kernel.create_segment("s", 2)
        server = _GrantingServer(kernel, segment)
        registry.register(segment, server)
        with pytest.raises(ValueError):
            registry.register(segment, server)

    def test_unregister(self, plb_kernel):
        kernel = plb_kernel
        machine = Machine(kernel)
        registry = SegmentServerRegistry(kernel)
        segment = kernel.create_segment("s", 2)
        server = _GrantingServer(kernel, segment)
        registry.register(segment, server)
        assert registry.unregister(segment)
        assert not registry.unregister(segment)
        domain = kernel.create_domain("d")
        kernel.attach(domain, segment, Rights.NONE)
        with pytest.raises(SegmentationViolation):
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))


class TestAppendOnlyLog:
    def make(self, model="plb", pages=4):
        kernel = Kernel(model)
        machine = Machine(kernel)
        registry = SegmentServerRegistry(kernel)
        log_segment = kernel.create_segment("log", pages)
        log = AppendOnlyLogServer(kernel, registry, log_segment)
        writer = kernel.create_domain("writer")
        log.admit(writer)
        return kernel, machine, log, writer, log_segment

    @pytest.mark.parametrize("model", MODELS)
    def test_appending_advances_frontier(self, model):
        kernel, machine, log, writer, segment = self.make(model)
        # Fill page 0, then append into page 1: one fault, sealed page 0.
        machine.write(writer, kernel.params.vaddr(segment.vpn_at(0)))
        result = machine.write(writer, kernel.params.vaddr(segment.vpn_at(1)))
        assert result.protection_faults == 1
        assert log.frontier == 1
        assert kernel.stats["segserver.log_page_sealed"] == 1

    @pytest.mark.parametrize("model", MODELS)
    def test_sealed_history_immutable(self, model):
        kernel, machine, log, writer, segment = self.make(model)
        machine.write(writer, kernel.params.vaddr(segment.vpn_at(1)))  # advance
        with pytest.raises(SegmentationViolation):
            machine.write(writer, kernel.params.vaddr(segment.vpn_at(0)))
        assert kernel.stats["segserver.log_tamper_refused"] >= 1

    @pytest.mark.parametrize("model", MODELS)
    def test_history_readable(self, model):
        kernel, machine, log, writer, segment = self.make(model)
        machine.write(writer, kernel.params.vaddr(segment.vpn_at(1)))
        machine.read(writer, kernel.params.vaddr(segment.vpn_at(0)))

    def test_skipping_ahead_refused(self):
        kernel, machine, log, writer, segment = self.make()
        with pytest.raises(SegmentationViolation):
            machine.write(writer, kernel.params.vaddr(segment.vpn_at(3)))
        assert log.frontier == 0

    def test_log_full(self):
        kernel, machine, log, writer, segment = self.make(pages=2)
        machine.write(writer, kernel.params.vaddr(segment.vpn_at(1)))  # frontier 1
        with pytest.raises(SegmentationViolation):
            # No page 2 to advance into: the log is full.
            machine.write(writer, kernel.params.vaddr(segment.vpn_at(1) + 4096))

    def test_reader_cannot_append(self):
        kernel, machine, log, writer, segment = self.make()
        reader = kernel.create_domain("reader")
        log.admit(reader, reader_only=True)
        machine.read(reader, kernel.params.vaddr(segment.vpn_at(0)))
        with pytest.raises(SegmentationViolation):
            machine.write(reader, kernel.params.vaddr(segment.vpn_at(0)))

    def test_multiple_appenders_share_frontier(self):
        kernel, machine, log, writer, segment = self.make()
        second = kernel.create_domain("writer-2")
        log.admit(second)
        machine.write(writer, kernel.params.vaddr(segment.vpn_at(0)))
        machine.write(second, kernel.params.vaddr(segment.vpn_at(0)))
        # Either appender can trigger the advance; both follow it.
        machine.write(second, kernel.params.vaddr(segment.vpn_at(1)))
        assert log.frontier == 1
        machine.write(writer, kernel.params.vaddr(segment.vpn_at(1)))
