"""Kernel tests common to all three memory-system models.

These run against the parametrized ``kernel`` fixture, so every
behaviour here holds identically for the PLB, page-group and
conventional systems — the OS semantics are model-independent even
though the hardware mechanics differ.
"""

from __future__ import annotations

import pytest

from repro.core.rights import AccessType, Rights
from repro.os.kernel import Kernel, KernelError, SegmentationViolation
from repro.sim.machine import Machine

from tests.conftest import make_attached_segment


class TestDomainsAndSegments:
    def test_create_domain_ids_unique(self, kernel):
        a = kernel.create_domain("a")
        b = kernel.create_domain("b")
        assert a.pd_id != b.pd_id

    def test_create_segment_allocates_disjoint_ranges(self, kernel):
        s1 = kernel.create_segment("s1", 8)
        s2 = kernel.create_segment("s2", 8)
        assert s1.end_vpn <= s2.base_vpn or s2.end_vpn <= s1.base_vpn

    def test_segment_at_lookup(self, kernel):
        segment = kernel.create_segment("s", 4)
        assert kernel.segment_at(segment.base_vpn) is segment
        assert kernel.segment_at(segment.end_vpn - 1) is segment
        assert kernel.segment_at(segment.end_vpn) is None

    def test_populated_segments_are_resident(self, kernel):
        segment = kernel.create_segment("s", 4)
        for vpn in segment.vpns():
            assert kernel.translations.is_resident(vpn)

    def test_unpopulated_segments_demand_zero(self, kernel):
        segment = kernel.create_segment("s", 4, populate=False)
        domain = kernel.create_domain("d")
        kernel.attach(domain, segment, Rights.RW)
        machine = Machine(kernel)
        result = machine.write(domain, kernel.params.vaddr(segment.base_vpn))
        assert result.page_faults == 1
        assert kernel.translations.is_resident(segment.base_vpn)

    def test_double_attach_rejected(self, kernel):
        domain, segment = make_attached_segment(kernel)
        with pytest.raises(KernelError):
            kernel.attach(domain, segment, Rights.READ)

    def test_detach_unattached_rejected(self, kernel):
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 2)
        with pytest.raises(KernelError):
            kernel.detach(domain, segment)


class TestAccessSemantics:
    def test_attached_rw_can_read_write(self, kernel):
        domain, segment = make_attached_segment(kernel)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        assert not machine.read(domain, vaddr).faulted or True
        machine.write(domain, vaddr)

    def test_read_only_attachment_blocks_writes(self, kernel):
        domain, segment = make_attached_segment(kernel, rights=Rights.READ)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.read(domain, vaddr)
        with pytest.raises(SegmentationViolation):
            machine.write(domain, vaddr)

    def test_unattached_segment_inaccessible(self, kernel):
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 2)
        machine = Machine(kernel)
        with pytest.raises(SegmentationViolation):
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))

    def test_detach_revokes_access(self, kernel):
        domain, segment = make_attached_segment(kernel)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.read(domain, vaddr)
        kernel.detach(domain, segment)
        with pytest.raises(SegmentationViolation):
            machine.read(domain, vaddr)

    def test_detach_then_reattach(self, kernel):
        domain, segment = make_attached_segment(kernel)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.write(domain, vaddr)
        kernel.detach(domain, segment)
        kernel.attach(domain, segment, Rights.READ)
        machine.read(domain, vaddr)
        with pytest.raises(SegmentationViolation):
            machine.write(domain, vaddr)

    def test_isolation_between_domains(self, kernel):
        """One domain's attachment grants nothing to another."""
        domain, segment = make_attached_segment(kernel)
        other = kernel.create_domain("other")
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.write(domain, vaddr)
        with pytest.raises(SegmentationViolation):
            machine.read(other, vaddr)

    def test_outside_any_segment_faults(self, kernel):
        domain = kernel.create_domain("d")
        machine = Machine(kernel)
        with pytest.raises(SegmentationViolation):
            machine.read(domain, 0x7FFF_0000_0000)


class TestPermissionChanges:
    def test_set_page_rights_downgrades_one_domain(self, kernel):
        domain, segment = make_attached_segment(kernel)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.write(domain, vaddr)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.READ)
        machine.read(domain, vaddr)
        with pytest.raises(SegmentationViolation):
            machine.write(domain, vaddr)

    def test_set_page_rights_upgrade(self, kernel):
        domain, segment = make_attached_segment(kernel, rights=Rights.READ)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.read(domain, vaddr)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.RW)
        machine.write(domain, vaddr)

    def test_other_pages_unaffected(self, kernel):
        domain, segment = make_attached_segment(kernel)
        machine = Machine(kernel)
        kernel.set_page_rights(domain, segment.base_vpn, Rights.NONE)
        machine.write(domain, kernel.params.vaddr(segment.base_vpn + 1))
        with pytest.raises(SegmentationViolation):
            machine.read(domain, kernel.params.vaddr(segment.base_vpn))

    def test_set_page_rights_requires_attachment(self, kernel):
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 2)
        with pytest.raises(KernelError):
            kernel.set_page_rights(domain, segment.base_vpn, Rights.READ)

    def test_set_segment_rights_uniform(self, kernel):
        domain, segment = make_attached_segment(kernel)
        machine = Machine(kernel)
        for vpn in segment.vpns():
            machine.write(domain, kernel.params.vaddr(vpn))
        kernel.set_segment_rights(domain, segment, Rights.READ)
        for vpn in segment.vpns():
            machine.read(domain, kernel.params.vaddr(vpn))
            with pytest.raises(SegmentationViolation):
                machine.write(domain, kernel.params.vaddr(vpn))


class TestUnmap:
    def test_unmap_page_removes_translation(self, kernel):
        domain, segment = make_attached_segment(kernel)
        vpn = segment.base_vpn
        pfn = kernel.unmap_page(vpn)
        assert not kernel.translations.is_resident(vpn)
        assert kernel.memory.is_allocated(pfn)  # caller still owns it

    def test_free_page_releases_frame(self, kernel):
        domain, segment = make_attached_segment(kernel)
        free_before = kernel.memory.free_frames
        kernel.free_page(segment.base_vpn)
        assert kernel.memory.free_frames == free_before + 1

    def test_unmap_nonresident_raises(self, kernel):
        kernel.create_segment("s", 2, populate=False)
        with pytest.raises(KernelError):
            kernel.unmap_page(0x100)

    def test_access_after_unmap_demand_zeroes(self, kernel):
        """An unmapped (not paged-out) page faults and gets a new frame."""
        domain, segment = make_attached_segment(kernel)
        machine = Machine(kernel)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.write(domain, vaddr)
        kernel.free_page(segment.base_vpn)
        result = machine.read(domain, vaddr)
        assert result.page_faults >= 1
        assert kernel.translations.is_resident(segment.base_vpn)


class TestSwitching:
    def test_switch_changes_current_domain(self, kernel):
        a = kernel.create_domain("a")
        b = kernel.create_domain("b")
        kernel.switch_to(a)
        assert kernel.system.current_domain == a.pd_id
        kernel.switch_to(b)
        assert kernel.system.current_domain == b.pd_id

    def test_switch_counts_kernel_trap(self, kernel):
        domain = kernel.create_domain("a")
        before = kernel.stats["kernel.trap"]
        kernel.switch_to(domain)
        assert kernel.stats["kernel.trap"] == before + 1


class TestModelValidation:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            Kernel("bogus")

    def test_pagegroup_primitives_rejected_elsewhere(self, kernel):
        if kernel.model == "pagegroup":
            pytest.skip("primitive is valid on the page-group model")
        domain, segment = make_attached_segment(kernel)
        with pytest.raises(KernelError):
            kernel.move_page_to_group(segment.base_vpn, 99)
        with pytest.raises(KernelError):
            kernel.grant_group(domain, 99)
