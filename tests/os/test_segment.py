"""Unit and property tests for virtual segments and the VA allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.os.segment import AddressSpaceAllocator, VirtualSegment


def make_segment(base=0x100, pages=8, seg_id=1, aid=1) -> VirtualSegment:
    return VirtualSegment(seg_id=seg_id, name="s", base_vpn=base, n_pages=pages, aid=aid)


class TestVirtualSegment:
    def test_bounds(self):
        seg = make_segment(base=0x100, pages=8)
        assert seg.end_vpn == 0x108
        assert len(seg) == 8

    def test_contains(self):
        seg = make_segment(base=0x100, pages=8)
        assert seg.contains(0x100)
        assert seg.contains(0x107)
        assert not seg.contains(0x108)
        assert not seg.contains(0xFF)

    def test_vpns_enumeration(self):
        seg = make_segment(base=10, pages=3)
        assert list(seg.vpns()) == [10, 11, 12]

    def test_vpn_at_bounds_checked(self):
        seg = make_segment(pages=4)
        assert seg.vpn_at(0) == seg.base_vpn
        assert seg.vpn_at(3) == seg.base_vpn + 3
        with pytest.raises(IndexError):
            seg.vpn_at(4)
        with pytest.raises(IndexError):
            seg.vpn_at(-1)


class TestAllocator:
    def test_allocations_are_disjoint(self):
        alloc = AddressSpaceAllocator()
        ranges = []
        for pages in (5, 16, 3, 100):
            base = alloc.allocate(pages)
            ranges.append((base, base + pages))
        for i, (lo1, hi1) in enumerate(ranges):
            for lo2, hi2 in ranges[i + 1 :]:
                assert hi1 <= lo2 or hi2 <= lo1

    def test_power_of_two_alignment(self):
        """Power-of-two segments occupy one naturally aligned superpage
        (the §4.3 alignment requirement)."""
        alloc = AddressSpaceAllocator()
        alloc.allocate(3)  # misalign the frontier
        base = alloc.allocate(16)
        assert base % 16 == 0

    def test_non_power_sizes_align_up(self):
        alloc = AddressSpaceAllocator()
        base = alloc.allocate(5)  # aligns to 8
        assert base % 8 == 0

    def test_addresses_never_reused(self):
        alloc = AddressSpaceAllocator()
        first = alloc.allocate(4)
        second = alloc.allocate(4)
        assert second >= first + 4

    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            AddressSpaceAllocator().allocate(0)

    def test_exhaustion(self):
        alloc = AddressSpaceAllocator(first_vpn=0, limit_vpn=16)
        alloc.allocate(16)
        with pytest.raises(MemoryError):
            alloc.allocate(1)

    def test_reserve_specific_range(self):
        alloc = AddressSpaceAllocator(first_vpn=0x100)
        base = alloc.reserve(0x4000, 32)
        assert base == 0x4000
        # Subsequent allocation starts beyond the reservation.
        assert alloc.allocate(4) >= 0x4020

    def test_reserve_behind_frontier_rejected(self):
        alloc = AddressSpaceAllocator(first_vpn=0x100)
        alloc.allocate(16)
        with pytest.raises(ValueError):
            alloc.reserve(0x100, 4)

    def test_reserve_beyond_limit_rejected(self):
        alloc = AddressSpaceAllocator(first_vpn=0, limit_vpn=100)
        with pytest.raises(MemoryError):
            alloc.reserve(90, 20)


class TestAllocatorProperties:
    @settings(max_examples=50)
    @given(sizes=st.lists(st.integers(1, 64), min_size=1, max_size=30))
    def test_all_allocations_disjoint_and_aligned(self, sizes):
        alloc = AddressSpaceAllocator()
        taken: list[tuple[int, int]] = []
        for pages in sizes:
            base = alloc.allocate(pages)
            align = 1 << (pages - 1).bit_length()
            assert base % align == 0
            for lo, hi in taken:
                assert base >= hi or base + pages <= lo
            taken.append((base, base + pages))


class TestAllocatorFrontier:
    def test_allocated_through_advances(self):
        alloc = AddressSpaceAllocator(first_vpn=0x100)
        assert alloc.allocated_through == 0x100
        base = alloc.allocate(4)
        assert alloc.allocated_through == base + 4
