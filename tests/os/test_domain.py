"""Unit tests for the protection-domain record."""

from __future__ import annotations

from repro.core.rights import Rights
from repro.os.domain import ProtectionDomain


def make(pd_id=1) -> ProtectionDomain:
    return ProtectionDomain(pd_id=pd_id, name=f"d{pd_id}")


class TestAttachments:
    def test_fresh_domain_has_nothing(self):
        domain = make()
        assert not domain.is_attached(1)
        assert not domain.holds_group(1)
        assert not domain.page_overrides

    def test_attachment_bookkeeping(self):
        domain = make()
        domain.attachments[3] = Rights.RW
        assert domain.is_attached(3)
        assert not domain.is_attached(4)


class TestGroups:
    def test_grant_and_revoke(self):
        domain = make()
        entry = domain.grant_group(7)
        assert domain.holds_group(7)
        assert not entry.write_disable
        assert domain.revoke_group(7)
        assert not domain.holds_group(7)
        assert not domain.revoke_group(7)

    def test_grant_with_write_disable(self):
        domain = make()
        entry = domain.grant_group(7, write_disable=True)
        assert entry.write_disable
        assert domain.groups[7].write_disable

    def test_regrant_replaces_entry(self):
        domain = make()
        domain.grant_group(7, write_disable=True)
        domain.grant_group(7, write_disable=False)
        assert not domain.groups[7].write_disable
        assert len(domain.groups) == 1


class TestOverrides:
    def test_clear_overrides_in_range(self):
        domain = make()
        for vpn in range(10):
            domain.page_overrides[vpn] = Rights.READ
        cleared = domain.clear_overrides_in(3, 7)
        assert cleared == 4
        assert set(domain.page_overrides) == {0, 1, 2, 7, 8, 9}

    def test_clear_empty_range(self):
        domain = make()
        domain.page_overrides[5] = Rights.RW
        assert domain.clear_overrides_in(10, 20) == 0
        assert 5 in domain.page_overrides
