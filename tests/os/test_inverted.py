"""Tests for the inverted page table (§3.1's IBM 801 reference)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rights import Rights
from repro.os.inverted import InvertedPageTable
from repro.os.kernel import Kernel
from repro.sim.machine import Machine


class TestBasicOperations:
    def test_map_lookup_unmap(self):
        ipt = InvertedPageTable(16)
        ipt.map(0x1234, 5)
        assert ipt.pfn_for(0x1234) == 5
        assert ipt.is_resident(0x1234)
        assert ipt.unmap(0x1234) == 5
        assert ipt.pfn_for(0x1234) is None

    def test_remap_same_page_moves_frame(self):
        ipt = InvertedPageTable(16)
        ipt.map(0x10, 3)
        ipt.map(0x10, 7)
        assert ipt.pfn_for(0x10) == 7
        # Frame 3 is free for another page.
        ipt.map(0x20, 3)
        assert ipt.pfn_for(0x20) == 3

    def test_reusing_frame_evicts_old_mapping(self):
        ipt = InvertedPageTable(16)
        ipt.map(0x10, 3)
        ipt.map(0x20, 3)
        assert ipt.pfn_for(0x20) == 3
        assert ipt.pfn_for(0x10) is None

    def test_unmap_missing_returns_none(self):
        assert InvertedPageTable(4).unmap(0x99) is None

    def test_frame_bounds_checked(self):
        with pytest.raises(ValueError):
            InvertedPageTable(4).map(0x10, 4)
        with pytest.raises(ValueError):
            InvertedPageTable(0)

    def test_on_disk_state_survives_unmap(self):
        ipt = InvertedPageTable(8)
        ipt.map(0x10, 1)
        ipt.unmap(0x10)
        ipt.mark_on_disk(0x10)
        mapping = ipt.mapping(0x10)
        assert mapping is not None and mapping.on_disk and not mapping.resident
        ipt.map(0x10, 2)
        assert ipt.mapping(0x10).on_disk  # carried back in

    def test_forget(self):
        ipt = InvertedPageTable(8)
        ipt.map(0x10, 1)
        ipt.forget(0x10)
        assert not ipt.is_known(0x10)

    def test_resident_vpns(self):
        ipt = InvertedPageTable(8)
        ipt.map(0x10, 1)
        ipt.map(0x20, 2)
        ipt.unmap(0x20)
        assert ipt.resident_vpns() == [0x10]


class TestSizeIndependence:
    def test_storage_depends_on_frames_not_va(self):
        """The §3.1 point: the table is sized by physical memory."""
        small = InvertedPageTable(64)
        # Map pages scattered across the full 52-bit page space.
        for index, vpn in enumerate([0x1, 0xFFFF, 0xFFFF_FFFF, 0xF_FFFF_FFFF_FFFF]):
            small.map(vpn, index)
        assert small.table_bits() == 64 * 64 + 128 * 24

    def test_probe_lengths_reasonable(self):
        ipt = InvertedPageTable(256)
        for index in range(256):
            ipt.map(0x1000 + index * 977, index)  # scattered VPNs
        for index in range(256):
            assert ipt.pfn_for(0x1000 + index * 977) is not None
        assert ipt.mean_probe_length < 4.0


class TestKernelSubstitution:
    @pytest.mark.parametrize("model", ["plb", "pagegroup", "conventional"])
    def test_kernel_runs_on_inverted_table(self, model):
        """The IPT implements GlobalTranslationTable's interface and can
        back the kernel directly."""
        kernel = Kernel(model, n_frames=128, inverted_table=True)
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 8)
        kernel.attach(domain, segment, Rights.RW)
        for vpn in segment.vpns():
            machine.write(domain, kernel.params.vaddr(vpn))
        assert kernel.stats["ipt.lookup"] > 0
        kernel.free_page(segment.base_vpn)
        assert not kernel.translations.is_resident(segment.base_vpn)

    def test_paging_over_inverted_table(self):
        """The user-level pager's protocol works over the IPT."""
        from repro.os.pager import UserLevelPager

        kernel = Kernel("plb", n_frames=64, inverted_table=True)
        pager = UserLevelPager(kernel, compress=True)
        machine = Machine(kernel)
        domain = kernel.create_domain("d")
        segment = kernel.create_segment("s", 4)
        kernel.attach(domain, segment, Rights.RW)
        vaddr = kernel.params.vaddr(segment.base_vpn)
        machine.write(domain, vaddr)
        pager.page_out(segment.base_vpn)
        machine.write(domain, vaddr)  # demand page-in over the IPT
        assert kernel.stats["pager.page_in"] == 1


class TestInvertedProperties:
    @settings(max_examples=40)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["map", "unmap"]),
                      st.integers(0, 30), st.integers(0, 15)),
            max_size=60,
        )
    )
    def test_matches_dict_model(self, ops):
        """The IPT agrees with a naive dict model under random ops."""
        ipt = InvertedPageTable(16)
        model: dict[int, int] = {}  # vpn -> pfn
        for op, vpn, pfn in ops:
            if op == "map":
                ipt.map(vpn, pfn)
                # A frame holds one page; a page has one frame.
                model = {v: f for v, f in model.items() if f != pfn and v != vpn}
                model[vpn] = pfn
            else:
                expected = model.pop(vpn, None)
                assert ipt.unmap(vpn) == expected
        for vpn in range(31):
            assert ipt.pfn_for(vpn) == model.get(vpn)
