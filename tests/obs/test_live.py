"""Unit tests for the streaming serve-mode collectors."""

from __future__ import annotations

import random

import pytest

from repro.obs.live import (
    LatencySketch,
    LiveCollector,
    P2Quantile,
    WindowedCounter,
)


class TestP2Quantile:
    def test_exact_for_small_samples(self):
        sketch = P2Quantile(0.5)
        for value in (10, 30, 20):
            sketch.add(value)
        assert sketch.value() == 20

    def test_tracks_the_median_of_a_uniform_stream(self):
        rng = random.Random(7)
        values = [rng.uniform(0, 1000) for _ in range(5000)]
        sketch = P2Quantile(0.5)
        for value in values:
            sketch.add(value)
        exact = sorted(values)[2500]
        assert sketch.value() == pytest.approx(exact, rel=0.05)

    def test_tracks_the_p99_of_a_uniform_stream(self):
        rng = random.Random(11)
        values = [rng.uniform(0, 1000) for _ in range(5000)]
        sketch = P2Quantile(0.99)
        for value in values:
            sketch.add(value)
        exact = sorted(values)[int(0.99 * 5000)]
        assert sketch.value() == pytest.approx(exact, rel=0.05)

    def test_deterministic_for_a_fixed_sequence(self):
        def run():
            sketch = P2Quantile(0.99)
            for i in range(1000):
                sketch.add((i * 37) % 101)
            return sketch.value()

        assert run() == run()

    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestP2QuantileEdges:
    """Boundary behavior of the P² estimator on degenerate streams."""

    def test_exact_nearest_rank_while_count_at_most_five(self):
        # Up to five observations the estimator holds the raw sample,
        # so value() must be the exact nearest-rank quantile for every
        # prefix of the stream.
        for q in (0.5, 0.9, 0.99):
            for n in range(1, 6):
                values = [((i * 13) % 7) * 10.0 for i in range(n)]
                sketch = P2Quantile(q)
                for value in values:
                    sketch.add(value)
                ordered = sorted(values)
                rank = max(0, min(n - 1, round(q * (n - 1))))
                assert sketch.value() == ordered[rank]

    def test_duplicate_heavy_stream_lands_on_the_plateau(self):
        # 90% of the stream is one value: the median markers collapse
        # onto the plateau (up to parabolic-adjustment float noise).
        rng = random.Random(3)
        values = [
            100.0 if rng.random() < 0.9 else rng.uniform(0, 1000)
            for _ in range(4000)
        ]
        sketch = P2Quantile(0.5)
        for value in values:
            sketch.add(value)
        assert sketch.value() == pytest.approx(100.0, abs=1e-3)

    def test_all_identical_observations_are_exact(self):
        sketch = P2Quantile(0.99)
        for _ in range(1000):
            sketch.add(42)
        assert sketch.value() == 42.0

    def test_monotone_ramps_stay_near_exact(self):
        # Sorted input is the adversarial case for marker-based
        # estimators (every observation lands in the top cell); P²
        # still tracks within 1%.  A descending ramp exercises the
        # bottom cell the same way.
        n = 10_000
        for q in (0.5, 0.99, 0.999):
            up = P2Quantile(q)
            for i in range(n):
                up.add(float(i))
            assert up.value() == pytest.approx(round(q * (n - 1)), rel=0.01)
        down = P2Quantile(0.5)
        for i in range(n, 0, -1):
            down.add(float(i))
        assert down.value() == pytest.approx(n / 2, rel=0.01)


class TestLatencySketch:
    def test_counts_totals_and_bounds(self):
        sketch = LatencySketch()
        for value in (5, 1, 9):
            sketch.add(value)
        data = sketch.as_dict()
        assert data["count"] == 3
        assert data["total"] == 15
        assert data["min"] == 1 and data["max"] == 9
        assert data["p50"] == 5

    def test_quantiles_clamped_to_observed_range(self):
        sketch = LatencySketch()
        for value in range(100):
            sketch.add(value)
        quantiles = sketch.quantiles()
        assert 0 <= quantiles["p50"] <= 99
        assert quantiles["p50"] <= quantiles["p99"] <= quantiles["p999"] <= 99

    def test_as_dict_keys_are_the_slo_schema(self):
        assert sorted(LatencySketch().as_dict()) == [
            "count", "max", "mean", "min", "p50", "p99", "p999", "total",
        ]

    def test_estimates_bounded_and_near_exact_on_skewed_latencies(self):
        # A heavy-tailed (lognormal) latency stream: every reported
        # quantile must sit inside the observed [min, max] and land
        # within a small relative error of the exact percentile —
        # tight at the median, looser in the tail where five markers
        # have the least resolution.
        rng = random.Random(17)
        values = [int(rng.lognormvariate(5, 1.2)) + 1 for _ in range(3000)]
        sketch = LatencySketch()
        for value in values:
            sketch.add(value)
        data = sketch.as_dict()
        ordered = sorted(values)
        for name, q, rel in (("p50", 0.5, 0.02), ("p99", 0.99, 0.10), ("p999", 0.999, 0.15)):
            exact = ordered[round(q * (len(values) - 1))]
            assert data["min"] <= data[name] <= data["max"]
            assert data[name] == pytest.approx(exact, rel=rel)
        assert data["p50"] <= data["p99"] <= data["p999"]


class TestWindowedCounter:
    def test_roll_closes_the_window(self):
        counter = WindowedCounter()
        counter.add(3)
        assert counter.window() == 3
        assert counter.roll() == 3
        counter.add(2)
        assert counter.roll() == 2
        assert counter.total == 5


class TestLiveCollector:
    def test_requests_feed_class_sketches_and_rates(self):
        collector = LiveCollector("plb")
        collector.observe_request("rpc", cycles=100, refs=72)
        collector.observe_request("rpc", cycles=300, refs=72)
        snap = collector.snapshot(1_000_000, window_us=1_000_000)
        assert snap["requests"]["total"] == 2
        assert snap["requests"]["per_class"]["rpc"]["window"] == 2
        assert snap["rates"]["requests_per_sec"] == 2.0
        assert snap["rates"]["refs_per_sec"] == 144.0
        assert snap["latency_cycles"]["per_class"]["rpc"]["count"] == 2

    def test_poll_derives_inject_and_recovery_events(self):
        collector = LiveCollector("plb")
        collector.poll(100, {"faults.injected": 1})
        collector.poll(400, {"faults.injected": 1, "faults.recovered": 1})
        snap = collector.snapshot(1000, window_us=1000)
        kinds = [event["event"] for event in snap["events"]]
        assert kinds == ["fault_injected", "fault_recovered"]
        recovery = snap["recovery_time_us"]
        assert recovery["count"] == 1
        assert recovery["p50"] == 300
        assert snap["faults"]["outstanding"] == 0

    def test_scrub_repair_also_closes_an_outstanding_inject(self):
        collector = LiveCollector("plb")
        collector.poll(50, {"faults.injected": 2})
        collector.poll(250, {"faults.injected": 2, "scrub.repairs": 1})
        summary = collector.slo_summary(1000)
        assert summary["faults"]["outstanding"] == 1
        assert summary["recovery_time_us"]["count"] == 1
        assert summary["recovery_time_us"]["p50"] == 200

    def test_seeded_baseline_suppresses_setup_phantom_events(self):
        # Regression: the collector used to baseline every watched
        # counter at zero, so the first poll reported counter movement
        # that happened during server *setup* (e.g. attach broadcasts
        # on an SMP kernel) as phantom events timestamped at the first
        # request.  Seeding from the post-construction counters makes
        # the first poll report only post-setup movement.
        setup_counters = {"smp.shootdown.msgs": 31, "scrub.runs": 2}
        seeded = LiveCollector("plb")
        seeded.seed_counters(setup_counters)
        seeded.poll(9196, setup_counters)
        assert seeded.snapshot(100_000, window_us=100_000)["events"] == []
        # Movement after the seed still surfaces, sized by the delta.
        seeded.poll(12_000, {"smp.shootdown.msgs": 34})
        events = seeded.snapshot(200_000, window_us=100_000)["events"]
        assert events == [{"t_us": 12_000, "event": "shootdown", "count": 3}]
        # The unseeded collector shows exactly the phantom this guards
        # against.
        unseeded = LiveCollector("plb")
        unseeded.poll(9196, setup_counters)
        phantom = unseeded.snapshot(100_000, window_us=100_000)["events"]
        assert phantom == [{"t_us": 9196, "event": "shootdown", "count": 31}]

    def test_snapshot_drains_the_event_stream(self):
        collector = LiveCollector("plb")
        collector.poll(10, {"smp.shootdown.msgs": 4})
        first = collector.snapshot(100, window_us=100)
        second = collector.snapshot(200, window_us=100)
        assert [event["event"] for event in first["events"]] == ["shootdown"]
        assert second["events"] == []

    def test_verb_sketches_key_by_span_name(self):
        class FakeSpan:
            name = "kernel.attach"
            cycles = 42

        collector = LiveCollector("plb")
        collector.observe_span(FakeSpan())
        summary = collector.slo_summary(1000)
        assert summary["latency_cycles_per_verb"]["kernel.attach"]["count"] == 1
