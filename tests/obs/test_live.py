"""Unit tests for the streaming serve-mode collectors."""

from __future__ import annotations

import random

import pytest

from repro.obs.live import (
    LatencySketch,
    LiveCollector,
    P2Quantile,
    WindowedCounter,
)


class TestP2Quantile:
    def test_exact_for_small_samples(self):
        sketch = P2Quantile(0.5)
        for value in (10, 30, 20):
            sketch.add(value)
        assert sketch.value() == 20

    def test_tracks_the_median_of_a_uniform_stream(self):
        rng = random.Random(7)
        values = [rng.uniform(0, 1000) for _ in range(5000)]
        sketch = P2Quantile(0.5)
        for value in values:
            sketch.add(value)
        exact = sorted(values)[2500]
        assert sketch.value() == pytest.approx(exact, rel=0.05)

    def test_tracks_the_p99_of_a_uniform_stream(self):
        rng = random.Random(11)
        values = [rng.uniform(0, 1000) for _ in range(5000)]
        sketch = P2Quantile(0.99)
        for value in values:
            sketch.add(value)
        exact = sorted(values)[int(0.99 * 5000)]
        assert sketch.value() == pytest.approx(exact, rel=0.05)

    def test_deterministic_for_a_fixed_sequence(self):
        def run():
            sketch = P2Quantile(0.99)
            for i in range(1000):
                sketch.add((i * 37) % 101)
            return sketch.value()

        assert run() == run()

    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestLatencySketch:
    def test_counts_totals_and_bounds(self):
        sketch = LatencySketch()
        for value in (5, 1, 9):
            sketch.add(value)
        data = sketch.as_dict()
        assert data["count"] == 3
        assert data["total"] == 15
        assert data["min"] == 1 and data["max"] == 9
        assert data["p50"] == 5

    def test_quantiles_clamped_to_observed_range(self):
        sketch = LatencySketch()
        for value in range(100):
            sketch.add(value)
        quantiles = sketch.quantiles()
        assert 0 <= quantiles["p50"] <= 99
        assert quantiles["p50"] <= quantiles["p99"] <= quantiles["p999"] <= 99

    def test_as_dict_keys_are_the_slo_schema(self):
        assert sorted(LatencySketch().as_dict()) == [
            "count", "max", "mean", "min", "p50", "p99", "p999", "total",
        ]


class TestWindowedCounter:
    def test_roll_closes_the_window(self):
        counter = WindowedCounter()
        counter.add(3)
        assert counter.window() == 3
        assert counter.roll() == 3
        counter.add(2)
        assert counter.roll() == 2
        assert counter.total == 5


class TestLiveCollector:
    def test_requests_feed_class_sketches_and_rates(self):
        collector = LiveCollector("plb")
        collector.observe_request("rpc", cycles=100, refs=72)
        collector.observe_request("rpc", cycles=300, refs=72)
        snap = collector.snapshot(1_000_000, window_us=1_000_000)
        assert snap["requests"]["total"] == 2
        assert snap["requests"]["per_class"]["rpc"]["window"] == 2
        assert snap["rates"]["requests_per_sec"] == 2.0
        assert snap["rates"]["refs_per_sec"] == 144.0
        assert snap["latency_cycles"]["per_class"]["rpc"]["count"] == 2

    def test_poll_derives_inject_and_recovery_events(self):
        collector = LiveCollector("plb")
        collector.poll(100, {"faults.injected": 1})
        collector.poll(400, {"faults.injected": 1, "faults.recovered": 1})
        snap = collector.snapshot(1000, window_us=1000)
        kinds = [event["event"] for event in snap["events"]]
        assert kinds == ["fault_injected", "fault_recovered"]
        recovery = snap["recovery_time_us"]
        assert recovery["count"] == 1
        assert recovery["p50"] == 300
        assert snap["faults"]["outstanding"] == 0

    def test_scrub_repair_also_closes_an_outstanding_inject(self):
        collector = LiveCollector("plb")
        collector.poll(50, {"faults.injected": 2})
        collector.poll(250, {"faults.injected": 2, "scrub.repairs": 1})
        summary = collector.slo_summary(1000)
        assert summary["faults"]["outstanding"] == 1
        assert summary["recovery_time_us"]["count"] == 1
        assert summary["recovery_time_us"]["p50"] == 200

    def test_snapshot_drains_the_event_stream(self):
        collector = LiveCollector("plb")
        collector.poll(10, {"smp.shootdown.msgs": 4})
        first = collector.snapshot(100, window_us=100)
        second = collector.snapshot(200, window_us=100)
        assert [event["event"] for event in first["events"]] == ["shootdown"]
        assert second["events"] == []

    def test_verb_sketches_key_by_span_name(self):
        class FakeSpan:
            name = "kernel.attach"
            cycles = 42

        collector = LiveCollector("plb")
        collector.observe_span(FakeSpan())
        summary = collector.slo_summary(1000)
        assert summary["latency_cycles_per_verb"]["kernel.attach"]["count"] == 1
