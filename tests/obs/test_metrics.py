"""Unit tests for histograms, timelines, and hotspot aggregation."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Histogram,
    Metrics,
    Timeline,
    attributed_cycles,
    hotspots,
)
from repro.obs.tracer import Tracer
from repro.sim.stats import Stats


class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram()
        for value in (0, 1, 2, 3, 4, 7, 8, 1000):
            h.add(value)
        assert h.count == 8
        assert h.min == 0 and h.max == 1000
        assert h.total == 1025
        rows = dict(((low, high), count) for low, high, count in h.buckets())
        assert rows[(0, 1)] == 1      # the zero
        assert rows[(1, 2)] == 1      # 1
        assert rows[(2, 4)] == 2      # 2, 3
        assert rows[(4, 8)] == 2      # 4, 7
        assert rows[(8, 16)] == 1     # 8
        assert rows[(512, 1024)] == 1  # 1000

    def test_mean_and_percentile(self):
        h = Histogram()
        for value in (1, 1, 1, 1000):
            h.add(value)
        assert h.mean == pytest.approx(250.75)
        assert h.percentile(0.5) == 1
        # Interpolated within the tail bucket and clamped to the observed
        # max — not the bucket's upper bound (1023).
        assert h.percentile(1.0) == 1000

    def test_percentile_interpolates_within_bucket(self):
        # 100 values spread across the [64, 128) bucket: the old
        # upper-bound behavior returned 127 for *every* quantile that
        # landed here; interpolation walks through the bucket by rank.
        h = Histogram()
        for value in range(64, 128):
            h.add(value)
        p50 = h.percentile(0.5)
        p99 = h.percentile(0.99)
        assert 64 <= p50 < p99 <= 127
        assert p50 == 96  # halfway through [64, 128)
        # Quantiles never escape the observed range.
        assert h.percentile(0.01) >= h.min
        assert h.percentile(1.0) <= h.max

    def test_percentile_fix_keeps_as_dict_shape(self):
        # The as_dict() contract is unchanged by the percentile fix.
        h = Histogram()
        for value in (1, 1, 1, 1000):
            h.add(value)
        data = h.as_dict()
        assert sorted(data) == ["buckets", "count", "max", "mean", "min", "total"]
        assert data["buckets"] == [[1, 2, 3], [512, 1024, 1]]
        assert data["count"] == 4 and data["max"] == 1000

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            Histogram().add(-1)

    def test_as_dict_is_json_shaped(self):
        h = Histogram()
        h.add(5)
        data = h.as_dict()
        assert data["count"] == 1
        assert data["buckets"] == [[4, 8, 1]]


class TestTimeline:
    def test_buckets_roll_per_k_references(self):
        stats = Stats()
        timeline = Timeline(stats, bucket_refs=10)
        for step in range(35):
            stats.inc("refs")
            if step % 2 == 0:
                stats.inc("plb.miss")
            timeline.observe()
        buckets = timeline.finish()
        assert [b.start_ref for b in buckets] == [0, 10, 20, 30]
        assert [b.end_ref for b in buckets] == [10, 20, 30, 35]
        assert sum(timeline.series("plb.miss")) == stats["plb.miss"]
        assert sum(b.counts["refs"] for b in buckets) == 35

    def test_finish_without_references_adds_nothing(self):
        timeline = Timeline(Stats(), bucket_refs=10)
        assert timeline.finish() == []


class TestMetricsRegistry:
    def test_tracer_feeds_span_histograms(self):
        stats = Stats()
        metrics = Metrics(stats, timeline_bucket_refs=100)
        tracer = Tracer(stats, metrics=metrics)
        for _ in range(5):
            with tracer.span("kernel.detach"):
                stats.inc("kernel.trap")
        tracer.finish()
        metrics.finish()
        h = metrics.histograms["kernel.detach"]
        assert h.count == 5
        assert metrics.counter("kernel.trap") == 5
        assert "histograms" in metrics.as_dict()


class TestHotspots:
    def test_exclusive_cycles_partition_the_total(self):
        stats = Stats()
        tracer = Tracer(stats)
        with tracer.span("run"):
            stats.inc("kernel.trap", 2)
            for _ in range(3):
                with tracer.span("verb"):
                    stats.inc("plb.fill", 4)
        spans = tracer.finish()
        rows = hotspots(spans)
        assert sum(row.exclusive_cycles for row in rows) == attributed_cycles(spans)
        by_name = {row.name: row for row in rows}
        assert by_name["verb"].count == 3
        assert by_name["run"].count == 1
        assert by_name["run"].inclusive_cycles == spans[0].cycles

    def test_ranked_by_exclusive_cycles(self):
        stats = Stats()
        tracer = Tracer(stats)
        with tracer.span("cheap"):
            stats.inc("dcache.hit", 1)
        with tracer.span("dear"):
            stats.inc("kernel.trap", 50)
        rows = hotspots(tracer.finish())
        assert [row.name for row in rows] == ["dear", "cheap"]
