"""Unit tests for the exporters: JSONL, Chrome traces, RunReports."""

from __future__ import annotations

import json

from repro.core.costs import cycles_for
from repro.core.params import DEFAULT_PARAMS
from repro.obs.export import (
    REPORT_VERSION,
    RunReport,
    build_run_report,
    load_run_report,
    span_tree,
    spans_to_jsonl,
    write_chrome_trace,
)
from repro.obs.metrics import Metrics
from repro.obs.tracer import Tracer
from repro.sim.stats import Stats


def _traced_forest():
    stats = Stats()
    tracer = Tracer(stats)
    with tracer.span("alpha", pd=1):
        stats.inc("kernel.trap", 2)
        with tracer.span("beta"):
            stats.inc("plb.fill", 3)
    with tracer.span("gamma"):
        stats.inc("dcache.hit")
    return stats, tracer, tracer.finish()


class TestJsonl:
    def test_preorder_with_parent_indexes(self, tmp_path):
        _, _, spans = _traced_forest()
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as fp:
            count = spans_to_jsonl(spans, fp)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert count == len(lines) == 3
        assert [line["name"] for line in lines] == ["alpha", "beta", "gamma"]
        assert [line["parent"] for line in lines] == [None, 0, None]
        assert lines[1]["delta"] == {"plb.fill": 3}


class TestChromeTraceFile:
    def test_written_file_is_loadable_json(self, tmp_path):
        _, _, spans = _traced_forest()
        path = tmp_path / "trace.json"
        write_chrome_trace(spans, str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["process_name", "alpha", "beta", "gamma"]


class TestRunReport:
    def test_build_and_roundtrip(self, tmp_path):
        stats, tracer, spans = _traced_forest()
        metrics = Metrics(stats)
        report = build_run_report(
            "unit test", "plb", stats,
            params=DEFAULT_PARAMS, summary={"widgets": 7},
            tracer=tracer, metrics=metrics,
        )
        assert report.version == REPORT_VERSION
        assert report.cycles_total == cycles_for(stats)
        assert report.counters["kernel.trap"] == 2
        assert report.params["va_bits"] == DEFAULT_PARAMS.va_bits
        assert report.summary == {"widgets": 7}
        assert [s["name"] for s in report.spans] == ["alpha", "gamma"]

        path = tmp_path / "report.json"
        report.write(str(path))
        loaded = load_run_report(str(path))
        assert loaded.to_dict() == report.to_dict()

    def test_breakdown_sums_to_total(self):
        stats, _, _ = _traced_forest()
        report = build_run_report("t", "plb", stats)
        assert sum(report.cycles_breakdown.values()) == report.cycles_total

    def test_from_dict_defaults_missing_sections(self):
        report = RunReport.from_dict(
            {"title": "t", "model": "plb", "cycles_total": 0}
        )
        assert report.spans == [] and report.metrics == {}

    def test_span_tree_preserves_nesting(self):
        _, _, spans = _traced_forest()
        tree = span_tree(spans)
        assert tree[0]["children"][0]["name"] == "beta"
        assert tree[0]["exclusive_cycles"] + tree[0]["children"][0][
            "cycles"
        ] == tree[0]["cycles"]
