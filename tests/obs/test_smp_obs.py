"""SMP × observability: tracers and collectors on multi-CPU kernels.

The per-CPU dimension of live telemetry rests on two merge views:
``Kernel.merged_stats()`` (all CPUs summed, nameless) and
``per_cpu_stats()`` (CPU 0 unprefixed, remote CPUs under ``cpuN:``).
These tests pin their consistency with single-CPU semantics while a
tracer + live collector are attached.
"""

from __future__ import annotations

import pytest

from repro.core.rights import Rights
from repro.obs.live import LiveCollector
from repro.obs.tracer import Tracer
from repro.os.kernel import MODELS, Kernel
from repro.os.smp import per_cpu_stats
from repro.sim.machine import Machine


def _drive_two_cpus(model: str, *, traced: bool):
    kernel = Kernel(model, n_frames=128, n_cpus=2)
    collector = LiveCollector(model)
    if traced:
        tracer = Tracer(kernel.stats, metrics=collector)
        kernel.attach_tracer(tracer)
    doms = [kernel.create_domain(f"d{i}") for i in range(2)]
    seg = kernel.create_segment("shared", 8)
    for dom in doms:
        kernel.attach(dom, seg, Rights.RW)
    machines = [Machine(kernel, cpu=ctx) for ctx in kernel.cpus]
    page = kernel.params.page_size
    for rounds in range(3):
        for cpu_id, machine in enumerate(machines):
            for p in range(8):
                machine.read(doms[cpu_id], (seg.base_vpn + p) * page)
    # Protection churn from CPU 0 shoots down CPU 1's cached rights.
    kernel.set_current_cpu(0)
    kernel.detach(doms[1], seg)
    machines[0].write(doms[0], seg.base_vpn * page)
    return kernel, collector


@pytest.mark.parametrize("model", MODELS)
def test_merged_stats_equals_per_cpu_stats_sum(model):
    kernel, _ = _drive_two_cpus(model, traced=True)
    merged = kernel.merged_stats().as_dict()
    per_cpu = per_cpu_stats(kernel).as_dict()
    # Strip the cpuN: prefixes and re-sum: must reproduce merged exactly.
    resummed: dict[str, int] = {}
    for name, count in per_cpu.items():
        bare = name.split(":", 1)[1] if name.startswith("cpu") and ":" in name else name
        resummed[bare] = resummed.get(bare, 0) + count
    assert resummed == merged


@pytest.mark.parametrize("model", MODELS)
def test_cpu0_counters_stay_unprefixed(model):
    kernel, _ = _drive_two_cpus(model, traced=True)
    per_cpu = per_cpu_stats(kernel).as_dict()
    kernel_counts = kernel.stats.as_dict()
    unprefixed = {
        name: count for name, count in per_cpu.items()
        if not (name.startswith("cpu") and ":" in name)
    }
    assert unprefixed == kernel_counts
    # Remote CPU counters all carry the invariant-checker prefix.
    remote = {name for name in per_cpu if name not in unprefixed}
    assert remote and all(name.startswith("cpu1:") for name in remote)


@pytest.mark.parametrize("model", MODELS)
def test_single_cpu_per_cpu_view_is_the_kernel_stats(model):
    kernel = Kernel(model, n_frames=128, n_cpus=1)
    dom = kernel.create_domain("d0")
    seg = kernel.create_segment("seg", 4)
    kernel.attach(dom, seg, Rights.RW)
    machine = Machine(kernel)
    for p in range(4):
        machine.read(dom, (seg.base_vpn + p) * kernel.params.page_size)
    assert per_cpu_stats(kernel).as_dict() == kernel.stats.as_dict()
    assert kernel.merged_stats().as_dict() == kernel.stats.as_dict()


@pytest.mark.parametrize("model", MODELS)
def test_collector_sees_verb_spans_under_multi_cpu(model):
    _, collector = _drive_two_cpus(model, traced=True)
    verbs = collector.slo_summary(1000)["latency_cycles_per_verb"]
    assert "kernel.attach" in verbs
    assert verbs["kernel.attach"]["count"] >= 2


@pytest.mark.parametrize("model", MODELS)
def test_tracer_attachment_does_not_change_merged_totals(model):
    """Tracing changes attribution, never the counted hardware events."""
    untraced, _ = _drive_two_cpus(model, traced=False)
    traced, _ = _drive_two_cpus(model, traced=True)
    assert (
        traced.merged_stats().as_dict() == untraced.merged_stats().as_dict()
    )
