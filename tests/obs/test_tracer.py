"""Unit tests for the span tracer: attribution, sampling, fast path."""

from __future__ import annotations

import json

import pytest

from repro.core.costs import DEFAULT_COSTS, cycles_for
from repro.core.rights import Rights
from repro.obs.export import chrome_trace
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.os.kernel import Kernel, MODELS
from repro.sim.machine import Machine
from repro.sim.stats import Stats
from repro.workloads.tracegen import RefPattern, TraceGenerator


def _run_refs(model: str, tracer=None, refs: int = 400) -> Stats:
    """One small deterministic reference stream; returns the stats delta."""
    kernel = Kernel(model)
    if tracer is not None:
        tracer_obj = tracer(kernel.stats)
        kernel.attach_tracer(tracer_obj)
    machine = Machine(kernel)
    domain = kernel.create_domain("app")
    segment = kernel.create_segment("data", 16)
    kernel.attach(domain, segment, Rights.RW)
    gen = TraceGenerator(7, kernel.params)
    before = kernel.stats.snapshot()
    for ref in gen.refs(domain.pd_id, segment, refs, RefPattern()):
        machine.touch(domain, ref.vaddr, ref.access)
    return kernel.stats.delta(before)


class TestAttribution:
    def test_nested_spans_sum_exactly(self):
        stats = Stats()
        tracer = Tracer(stats)
        with tracer.span("outer"):
            stats.inc("kernel.trap", 3)
            with tracer.span("inner.a"):
                stats.inc("plb.fill", 5)
            stats.inc("dcache.hit", 2)
            with tracer.span("inner.b"):
                stats.inc("tlb.fill", 4)
                with tracer.span("leaf"):
                    stats.inc("kernel.trap", 1)
        (outer,) = tracer.finish()
        inner_a, inner_b = outer.children
        (leaf,) = inner_b.children
        # Inclusive deltas include children; exclusive deltas do not.
        assert outer.delta["kernel.trap"] == 4
        assert outer.exclusive_delta() == {"kernel.trap": 3, "dcache.hit": 2}
        assert inner_b.delta == {"tlb.fill": 4, "kernel.trap": 1}
        assert inner_b.exclusive_delta() == {"tlb.fill": 4}
        assert leaf.delta == {"kernel.trap": 1}
        # Conservation: children inclusive + parent exclusive == parent
        # inclusive, in both counters and cycles.
        for parent in (outer, inner_b):
            summed = dict(parent.exclusive_delta())
            for child in parent.children:
                for name, count in child.delta.items():
                    summed[name] = summed.get(name, 0) + count
            assert summed == parent.delta
            assert parent.exclusive_cycles + sum(
                child.cycles for child in parent.children
            ) == parent.cycles

    def test_root_cycles_equal_cycles_for_of_delta(self):
        """The acceptance identity: attributed total == priced delta."""
        for model in MODELS:
            kernel = Kernel(model)
            machine = Machine(kernel)
            domain = kernel.create_domain("app")
            segment = kernel.create_segment("data", 16)
            kernel.attach(domain, segment, Rights.RW)
            gen = TraceGenerator(7, kernel.params)
            tracer = Tracer(kernel.stats)
            kernel.attach_tracer(tracer)
            before = kernel.stats.snapshot()
            with tracer.span("run"):
                for ref in gen.refs(domain.pd_id, segment, 300, RefPattern()):
                    machine.touch(domain, ref.vaddr, ref.access)
            (root,) = tracer.finish()
            delta = kernel.stats.delta(before)
            assert root.cycles == cycles_for(delta)

    def test_unpriced_counters_do_not_advance_the_clock(self):
        stats = Stats()
        tracer = Tracer(stats)
        with tracer.span("s"):
            stats.inc("some.unpriced.counter", 100)
        (span,) = tracer.finish()
        assert span.cycles == 0
        assert span.delta == {"some.unpriced.counter": 100}

    def test_clock_prices_with_default_weights(self):
        stats = Stats()
        tracer = Tracer(stats)
        with tracer.span("s"):
            stats.inc("kernel.trap", 2)
        (span,) = tracer.finish()
        assert span.cycles == 2 * DEFAULT_COSTS.weight_for("kernel.trap")
        assert tracer.clock_cycles == span.cycles

    def test_finish_with_open_span_raises(self):
        tracer = Tracer(Stats())
        handle = tracer.span("left.open")
        handle.__enter__()
        with pytest.raises(RuntimeError, match="left.open"):
            tracer.finish()

    def test_debug_monotonicity_check_passes_on_real_run(self):
        delta = _run_refs("plb", tracer=lambda s: Tracer(s, debug=True))
        assert delta["refs"] > 0


class TestSampling:
    def test_sampling_is_deterministic_under_fixed_seed(self):
        def decisions(seed: int) -> list[bool]:
            tracer = Tracer(Stats(), sample_every=4, seed=seed)
            out = []
            for _ in range(64):
                handle = tracer.span("hot", sample=True)
                recorded = hasattr(handle, "_tracer")
                if recorded:
                    with handle:
                        pass
                out.append(recorded)
            return out

        assert decisions(42) == decisions(42)
        assert decisions(42) != decisions(43)
        # roughly 1-in-4 recorded
        assert 4 <= sum(decisions(42)) <= 32

    def test_sample_every_one_records_everything(self):
        stats = Stats()
        tracer = Tracer(stats, sample_every=1)
        for _ in range(10):
            with tracer.span("hot", sample=True):
                stats.inc("kernel.trap")
        assert len(tracer.finish()) == 10
        assert tracer.sampled_out == 0

    def test_sampled_out_spans_fold_into_parent(self):
        stats = Stats()
        tracer = Tracer(stats, sample_every=1_000_000, seed=1)
        with tracer.span("outer"):
            for _ in range(20):
                with tracer.span("hot", sample=True):
                    stats.inc("kernel.trap")
        (outer,) = tracer.finish()
        assert tracer.sampled_out > 0
        # Nothing is lost: the parent's exclusive delta absorbs the
        # unrecorded spans' events.
        recorded = sum(
            child.delta.get("kernel.trap", 0) for child in outer.children
        )
        assert outer.delta["kernel.trap"] == 20
        assert outer.exclusive_delta().get("kernel.trap", 0) == 20 - recorded

    def test_traced_totals_invariant_under_sampling(self):
        """Attribution is exact, not extrapolated: the root span's
        inclusive cycles are identical at any sampling rate."""
        totals = []
        for sample_every in (1, 3, 50):
            kernel = Kernel("plb")
            machine = Machine(kernel)
            domain = kernel.create_domain("app")
            segment = kernel.create_segment("data", 16)
            kernel.attach(domain, segment, Rights.RW)
            gen = TraceGenerator(7, kernel.params)
            tracer = Tracer(kernel.stats, sample_every=sample_every, seed=9)
            kernel.attach_tracer(tracer)
            with tracer.span("run"):
                for ref in gen.refs(domain.pd_id, segment, 300, RefPattern()):
                    machine.touch(domain, ref.vaddr, ref.access)
            (root,) = tracer.finish()
            totals.append(root.cycles)
        assert len(set(totals)) == 1


class TestDisabledFastPath:
    def test_null_tracer_span_is_reusable_noop(self):
        first = NULL_TRACER.span("anything", pd=1)
        second = NULL_TRACER.span("other")
        assert first is second
        with first:
            pass
        assert NULL_TRACER.finish() == []
        assert not NULL_TRACER.active

    def test_untraced_run_statistics_are_untouched(self):
        """A kernel with no tracer attached counts exactly what the seed
        counted: instrumentation adds zero counters."""
        plain = _run_refs("plb")
        nulled = _run_refs("plb", tracer=lambda s: NULL_TRACER)
        assert plain.as_dict() == nulled.as_dict()

    def test_traced_run_adds_no_counters_either(self):
        """Tracing observes counters; it must never create them."""
        plain = _run_refs("pagegroup")
        traced = _run_refs("pagegroup", tracer=lambda s: Tracer(s))
        assert plain.as_dict() == traced.as_dict()

    def test_attach_then_detach_restores_fast_path(self):
        kernel = Kernel("plb")
        tracer = Tracer(kernel.stats)
        kernel.attach_tracer(tracer)
        assert kernel.system.access_fast is not kernel.system._access_fast
        kernel.system.attach_tracer(NULL_TRACER)
        assert kernel.system.access_fast == kernel.system._access_fast


class TestChromeRoundTrip:
    def test_chrome_trace_round_trips_json(self):
        stats = Stats()
        tracer = Tracer(stats)
        with tracer.span("outer", pd=3):
            stats.inc("kernel.trap")
            with tracer.span("inner"):
                stats.inc("plb.fill", 2)
        spans = tracer.finish()
        doc = json.loads(json.dumps(chrome_trace(spans)))
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        outer, inner = events
        assert outer["args"]["attrs"] == {"pd": 3}
        assert inner["args"]["delta"] == {"plb.fill": 2}
        # Complete events nest by interval on the shared timeline.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
